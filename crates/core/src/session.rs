//! Reusable engine sessions: solve many queries against one warm
//! [`FitnessEngine`].
//!
//! Before this module, `PlacementProblem::solve` constructed a fresh
//! [`FitnessEngine`] on **every call** — the `O(|S|)` position-index build,
//! the sharded per-DBC cost memo and the membership-keyed subsequence
//! summaries were all thrown away between queries, even when the next query
//! asked about the exact same trace. A single offline experiment never
//! noticed; a server answering repeat queries paid the whole warm-up again
//! and again.
//!
//! A [`Session`] owns the trace (shared via [`Arc`]), builds the engine
//! **once** (lazily — pure-heuristic solves never pay for it), and keeps it
//! warm across any number of [`solve`](Session::solve) calls. The
//! heuristic-seed placements every search strategy starts from are likewise
//! computed once and cached. `PlacementProblem::solve` itself now routes
//! through a transient one-shot `Session`, so there is exactly one solve
//! path in the crate — the warm path *is* the cold path, just with caches
//! already populated.
//!
//! # Warm ≡ cold bit-identity
//!
//! A warm solve returns **bit-identical** results to a cold solve of the
//! same query: every cached per-DBC cost is a pure function of the list's
//! content (`DESIGN.md` §7), the cached heuristic seeds are deterministic
//! functions of the trace, and no search trajectory ever reads engine
//! telemetry. What changes is only *work*: the second solve of an identical
//! query performs strictly fewer `dbc_recomputations` (pinned by a
//! regression test). [`Solution::engine_stats`] reports **per-solve**
//! deltas ([`EngineStats::since`]), so callers still see each query's own
//! cache behavior even though the underlying counters accumulate.
//!
//! # Sharing and concurrency
//!
//! `Session` is `Send + Sync`: the engine's caches are sharded mutexes and
//! its counters are atomics, so concurrent `solve` calls on one shared
//! session are safe — and, because caches can change only *when* a value is
//! computed, never *what*, each concurrent solve is bit-identical to the
//! same solve run alone. A server front end caches `Arc<Session>` per
//! (trace fingerprint, geometry) and lets requests race freely; with
//! [`with_worker_pool`](Session::with_worker_pool) every session draws
//! threads from one global [`WorkerPool`] so concurrent requests cannot
//! oversubscribe the host.

use crate::error::PlacementError;
use crate::eval::{EngineStats, FitnessEngine};
use crate::ga::GeneticPlacer;
use crate::placement::Placement;
use crate::pool::WorkerPool;
use crate::random_walk;
use crate::search::{Portfolio, SimulatedAnnealing, StopCause, TabuSearch};
use crate::strategy::{PlacementProblem, Solution, Strategy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A reusable solve handle: one problem, one lazily built warm engine, any
/// number of queries. See the [module docs](self) for the contract.
#[derive(Debug)]
pub struct Session {
    problem: PlacementProblem,
    /// Global pool override: engines built by this session run on it
    /// instead of a private per-engine pool.
    shared_pool: Option<Arc<WorkerPool>>,
    /// The warm engine, built on the first solve that needs one.
    engine: OnceLock<FitnessEngine<'static>>,
    /// The heuristic seed placements, computed once per session.
    seeds: OnceLock<Vec<Placement>>,
    solves: AtomicU64,
}

impl Session {
    /// Creates a session over `problem`. Construction is cheap (the trace
    /// is shared, not copied); the engine is built lazily on the first
    /// solve that evaluates fitness.
    pub fn new(problem: PlacementProblem) -> Self {
        Self {
            problem,
            shared_pool: None,
            engine: OnceLock::new(),
            seeds: OnceLock::new(),
            solves: AtomicU64::new(0),
        }
    }

    /// Runs this session's engine on a shared [`WorkerPool`] (a server's
    /// global pool) instead of a private one. Must be called before the
    /// first solve — the engine is built once and keeps its pool.
    #[must_use]
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }

    /// The problem this session answers queries about.
    pub fn problem(&self) -> &PlacementProblem {
        &self.problem
    }

    /// Number of [`solve`](Self::solve) calls completed so far.
    pub fn solves(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// The session's warm engine, building it on first use.
    pub fn engine(&self) -> &FitnessEngine<'static> {
        self.engine.get_or_init(|| {
            let engine =
                FitnessEngine::shared(self.problem.seq_shared(), self.problem.cost_model())
                    .with_threads(self.problem.threads())
                    .with_shards(self.problem.shards());
            match &self.shared_pool {
                Some(pool) => engine.with_worker_pool(pool.clone()),
                None => engine,
            }
        })
    }

    /// Cumulative engine counters over the whole session (all-zero until
    /// the first search-strategy solve builds the engine). Per-solve deltas
    /// are reported in each [`Solution::engine_stats`].
    pub fn engine_stats(&self) -> EngineStats {
        self.engine
            .get()
            .map(FitnessEngine::stats)
            .unwrap_or_default()
    }

    /// The four composite-heuristic seed placements, best-first — computed
    /// on first use and reused by every subsequent search-strategy solve
    /// (they are a deterministic function of the trace and geometry).
    pub fn heuristic_seeds(&self) -> &[Placement] {
        self.seeds.get_or_init(|| self.problem.heuristic_seeds())
    }

    /// Deliberately poisons the warm engine's cache shards (fault
    /// injection — `--features faults` only; a no-op before the engine
    /// exists). Recovery is per shard and results are unchanged, which is
    /// exactly what the live-session fault tests pin.
    #[cfg(feature = "faults")]
    pub fn poison_caches(&self) {
        if let Some(engine) = self.engine.get() {
            engine.poison_caches();
        }
    }

    /// Solves the problem with `strategy` on the warm engine.
    ///
    /// Bit-identical to a cold `PlacementProblem::solve` of the same
    /// query; repeat queries do strictly less evaluation work (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the variables cannot fit the
    /// geometry (`vars > q × N`).
    pub fn solve(&self, strategy: &Strategy) -> Result<Solution, PlacementError> {
        let mut evals_consumed = 0u64;
        let mut time_to_best = Duration::ZERO;
        let mut elapsed = Duration::ZERO;
        let mut stop = StopCause::Finished;
        let mut lanes = Vec::new();
        let mut engine_stats = EngineStats::default();
        let problem = &self.problem;
        let placement = match strategy {
            // The deterministic heuristics never evaluate fitness: they run
            // straight off the trace and must not force an engine build.
            Strategy::AfdNative
            | Strategy::AfdOfu
            | Strategy::DmaNative
            | Strategy::DmaOfu
            | Strategy::DmaChen
            | Strategy::DmaSr
            | Strategy::DmaMultiSr => problem.solve_heuristic(strategy)?,
            Strategy::Ga(cfg) => {
                let seeds = self.heuristic_seeds();
                let engine = self.engine();
                let before = engine.stats();
                let out = GeneticPlacer::new(*cfg)
                    .with_subarrays(problem.subarrays())
                    .run_with_engine(engine, problem.dbcs(), problem.capacity(), seeds)?;
                evals_consumed = out.evaluations as u64;
                time_to_best = out.time_to_best;
                elapsed = out.elapsed;
                stop = out.stop;
                engine_stats = engine.stats().since(&before);
                out.best
            }
            Strategy::RandomWalk(cfg) => {
                // The random walk's batch path never consults the caches,
                // so running it on the shared warm engine (memo enabled)
                // is bit-identical to the historical memo-less engine.
                let engine = self.engine();
                let before = engine.stats();
                let out = random_walk::run_budgeted(
                    engine,
                    problem.dbcs(),
                    problem.capacity(),
                    cfg.seed,
                    crate::search::Budget::evals(cfg.iterations as u64),
                    None,
                )?;
                evals_consumed = out.evals;
                time_to_best = out.time_to_best;
                elapsed = out.elapsed;
                stop = out.stop;
                engine_stats = engine.stats().since(&before);
                out.placement
            }
            Strategy::Sa(cfg) => {
                let seeds = self.heuristic_seeds();
                let engine = self.engine();
                let before = engine.stats();
                let out = SimulatedAnnealing::new(*cfg)
                    .with_subarrays(problem.subarrays())
                    .run_with_engine(engine, problem.dbcs(), problem.capacity(), seeds)?;
                evals_consumed = out.evals;
                time_to_best = out.time_to_best;
                elapsed = out.elapsed;
                stop = out.stop;
                engine_stats = engine.stats().since(&before);
                out.placement
            }
            Strategy::Tabu(cfg) => {
                let seeds = self.heuristic_seeds();
                let engine = self.engine();
                let before = engine.stats();
                let out = TabuSearch::new(*cfg)
                    .with_subarrays(problem.subarrays())
                    .run_with_engine(engine, problem.dbcs(), problem.capacity(), seeds)?;
                evals_consumed = out.evals;
                time_to_best = out.time_to_best;
                elapsed = out.elapsed;
                stop = out.stop;
                engine_stats = engine.stats().since(&before);
                out.placement
            }
            Strategy::Portfolio(cfg) => {
                let seeds = self.heuristic_seeds();
                let engine = self.engine();
                let before = engine.stats();
                let out = Portfolio::new(cfg.clone())
                    .with_subarrays(problem.subarrays())
                    .run_with_engine(engine, problem.dbcs(), problem.capacity(), seeds)?;
                evals_consumed = out.total_evals;
                time_to_best = out.best().time_to_best;
                elapsed = out.elapsed;
                stop = out.best().stop;
                lanes = out.lane_reports();
                engine_stats = engine.stats().since(&before);
                out.best().placement.clone()
            }
        };
        // One-shot final costing: the direct cost-model pass costs the same
        // as one engine evaluation without forcing an engine build on the
        // heuristic-only path.
        let per_dbc_shifts = problem
            .cost_model()
            .per_dbc_costs(&placement, problem.seq().accesses());
        let shifts = per_dbc_shifts.iter().sum();
        self.solves.fetch_add(1, Ordering::Relaxed);
        Ok(Solution {
            placement,
            shifts,
            per_dbc_shifts,
            evals_consumed,
            time_to_best,
            elapsed,
            stop,
            lanes,
            engine_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GaConfig;
    use crate::random_walk::RandomWalkConfig;
    use crate::search::{Budget, PortfolioConfig, SaConfig, TabuConfig};
    use rtm_trace::AccessSequence;

    const PAPER_SEQ: &str = "a b a b c a c a d d a i e f e f g e g h g i h i";

    fn problem(dbcs: usize) -> PlacementProblem {
        PlacementProblem::new(AccessSequence::parse(PAPER_SEQ).unwrap(), dbcs, 512)
    }

    /// The bugfix regression: a second solve of the identical query on a
    /// warm session returns the bit-identical `Solution` while performing
    /// strictly fewer per-DBC recomputations.
    #[test]
    fn warm_solve_is_bit_identical_and_strictly_cheaper() {
        let session = Session::new(problem(2));
        for strategy in [
            Strategy::Ga(GaConfig::quick()),
            Strategy::Sa(SaConfig::new(Budget::evals(400))),
            Strategy::Tabu(TabuConfig::new(Budget::evals(400))),
            Strategy::Portfolio(PortfolioConfig::new(Budget::evals(300))),
        ] {
            let cold = session.solve(&strategy).unwrap();
            let warm = session.solve(&strategy).unwrap();
            assert_eq!(cold.placement, warm.placement, "{strategy}");
            assert_eq!(cold.shifts, warm.shifts, "{strategy}");
            assert_eq!(cold.per_dbc_shifts, warm.per_dbc_shifts, "{strategy}");
            assert_eq!(cold.evals_consumed, warm.evals_consumed, "{strategy}");
            assert!(
                warm.engine_stats.dbc_recomputations < cold.engine_stats.dbc_recomputations,
                "{strategy}: warm {} !< cold {}",
                warm.engine_stats.dbc_recomputations,
                cold.engine_stats.dbc_recomputations
            );
        }
    }

    /// A warm session agrees bit-exactly with the one-shot
    /// `PlacementProblem::solve` path for every strategy kind.
    #[test]
    fn session_matches_one_shot_solve() {
        let p = problem(2);
        let session = Session::new(p.clone());
        let mut strategies = vec![
            Strategy::Sa(SaConfig::new(Budget::evals(300))),
            Strategy::Tabu(TabuConfig::new(Budget::evals(300))),
            Strategy::Portfolio(PortfolioConfig::new(Budget::evals(200))),
            Strategy::AfdNative,
            Strategy::DmaNative,
            Strategy::DmaMultiSr,
        ];
        strategies.extend(Strategy::evaluation_set(
            GaConfig::quick(),
            RandomWalkConfig::quick(),
        ));
        // Warm the session first so the comparison exercises warm ≡ cold.
        let _ = session.solve(&Strategy::Ga(GaConfig::quick())).unwrap();
        for s in &strategies {
            let warm = session.solve(s).unwrap();
            let cold = p.solve(s).unwrap();
            assert_eq!(warm.placement, cold.placement, "{s}");
            assert_eq!(warm.shifts, cold.shifts, "{s}");
            assert_eq!(warm.per_dbc_shifts, cold.per_dbc_shifts, "{s}");
        }
    }

    #[test]
    fn heuristic_solves_never_build_the_engine() {
        let session = Session::new(problem(2));
        for s in [Strategy::AfdOfu, Strategy::DmaSr, Strategy::DmaChen] {
            session.solve(&s).unwrap();
        }
        assert_eq!(session.engine_stats(), EngineStats::default());
        assert!(session.engine.get().is_none(), "engine built eagerly");
        assert_eq!(session.solves(), 3);
    }

    #[test]
    fn per_solve_stats_are_deltas_not_cumulative() {
        let session = Session::new(problem(2));
        let s = Strategy::Sa(SaConfig::new(Budget::evals(300)));
        let a = session.solve(&s).unwrap();
        let b = session.solve(&s).unwrap();
        let cumulative = session.engine_stats();
        assert_eq!(
            a.engine_stats.evaluations + b.engine_stats.evaluations,
            cumulative.evaluations
        );
        assert_eq!(
            a.engine_stats.dbc_recomputations + b.engine_stats.dbc_recomputations,
            cumulative.dbc_recomputations
        );
    }

    #[test]
    fn sessions_share_a_global_worker_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let a = Session::new(problem(2)).with_worker_pool(pool.clone());
        let b = Session::new(problem(4)).with_worker_pool(pool.clone());
        let s = Strategy::Ga(GaConfig::quick());
        let ra = a.solve(&s).unwrap();
        let rb = b.solve(&s).unwrap();
        // Both engines run on the same pool object...
        assert!(std::ptr::eq(a.engine().pool(), &*pool));
        assert!(std::ptr::eq(b.engine().pool(), &*pool));
        // ...and pool sharing never changes results.
        assert_eq!(ra.placement, problem(2).solve(&s).unwrap().placement);
        assert_eq!(rb.placement, problem(4).solve(&s).unwrap().placement);
    }

    #[test]
    fn concurrent_solves_on_one_session_are_bit_identical() {
        let session = Arc::new(Session::new(problem(2)));
        let s = Strategy::Sa(SaConfig::new(Budget::evals(300)));
        let reference = session.solve(&s).unwrap();
        let results: Vec<Solution> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let session = session.clone();
                    let s = s.clone();
                    scope.spawn(move || session.solve(&s).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r.placement, reference.placement);
            assert_eq!(r.shifts, reference.shifts);
        }
    }

    #[test]
    fn session_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
    }
}
