//! Differential tests for the fault-injection harness (`--features
//! faults`): under every seeded fault schedule the portfolio still returns
//! a valid placement, bit-identical to the best *surviving* lane run
//! standalone; deadline races wind down within `deadline + grace`; and
//! fault-free deterministic races are unperturbed by the harness being
//! compiled in.

#![cfg(feature = "faults")]

use rtm_placement::search::faults::{Fault, FaultPlan};
use rtm_placement::{
    Budget, CostModel, FitnessEngine, LaneSpec, LaneStatus, Placement, PlacementError,
    PlacementProblem, Portfolio, PortfolioConfig, SaConfig, SimulatedAnnealing, Strategy,
    TabuConfig, TabuSearch,
};
use rtm_trace::AccessSequence;
use std::time::{Duration, Instant};

const PAPER_SEQ: &str = "a b a b c a c a d d a i e f e f g e g h g i h i";

/// Generous allowance for CI scheduling noise on top of the contractual
/// `deadline + grace` bound.
const SLACK: Duration = Duration::from_secs(2);

fn engine_and_seeds(
    seq: &AccessSequence,
    dbcs: usize,
    capacity: usize,
) -> (FitnessEngine<'_>, Vec<Placement>) {
    let p = PlacementProblem::new(seq.clone(), dbcs, capacity);
    let seeds = vec![p.solve(&Strategy::DmaSr).unwrap().placement];
    (FitnessEngine::new(seq, CostModel::single_port()), seeds)
}

/// Panicking the GA and RW lanes leaves SA and tabu: the portfolio's best
/// must be bit-identical to the better of the two survivors run standalone
/// with the same per-lane budget and seed.
#[test]
fn best_equals_the_best_surviving_lane_standalone() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 8);
    let budget = Budget::evals(800);
    let cfg = PortfolioConfig::new(budget).with_seed(11);
    let plan = FaultPlan::new()
        .inject(2, Fault::PanicAfterEvals(40))
        .inject(3, Fault::PanicAfterEvals(25));
    let out = Portfolio::new(cfg.clone())
        .with_faults(plan)
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();

    assert_eq!(out.lanes[0].status, LaneStatus::Completed);
    assert_eq!(out.lanes[1].status, LaneStatus::Completed);
    for lane in &out.lanes[2..] {
        assert!(
            matches!(lane.status, LaneStatus::Panicked(_)),
            "{} lane should have panicked",
            lane.spec
        );
        assert!(lane.outcome.is_none());
    }

    let sa = SimulatedAnnealing::new(SaConfig::new(budget).with_seed(cfg.lane_seed(0)))
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    let tabu = TabuSearch::new(TabuConfig::new(budget).with_seed(cfg.lane_seed(1)))
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    // Same tie-break as the portfolio: earliest lane wins on equal cost.
    let best = if sa.cost <= tabu.cost { &sa } else { &tabu };
    assert_eq!(out.best().cost, best.cost);
    assert_eq!(out.best().placement, best.placement);
    assert_eq!(out.best().evals, best.evals);
    assert!(!out.degraded());
}

/// A panic before any publication in every lane is the one case with
/// nothing to degrade to: the taxonomy names the dead lanes.
#[test]
fn all_lanes_dead_before_publishing_is_no_surviving_lane() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 512);
    let mut plan = FaultPlan::new();
    for lane in 0..4 {
        plan = plan.inject(lane, Fault::PanicAfterEvals(1));
    }
    let err = Portfolio::new(PortfolioConfig::new(Budget::evals(500)))
        .with_faults(plan)
        .run_with_engine(&engine, 2, 512, &seeds)
        .unwrap_err();
    match err {
        PlacementError::NoSurvivingLane { lanes } => {
            assert_eq!(lanes, vec!["sa", "tabu", "ga", "rw"]);
        }
        other => panic!("expected NoSurvivingLane, got {other}"),
    }
}

/// When every lane dies *after* publishing, the race degrades to the
/// incumbent: still a valid placement, flagged as degraded.
#[test]
fn all_lanes_dead_after_publishing_degrades_to_the_incumbent() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 512);
    let mut plan = FaultPlan::new();
    for lane in 0..4 {
        plan = plan.inject(lane, Fault::PanicAfterEvals(60));
    }
    let out = Portfolio::new(PortfolioConfig::new(Budget::evals(2_000)).with_seed(4))
        .with_faults(plan)
        .run_with_engine(&engine, 2, 512, &seeds)
        .unwrap();
    assert!(out.degraded());
    assert!(out
        .lanes
        .iter()
        .all(|l| matches!(l.status, LaneStatus::Panicked(_))));
    out.best().placement.validate(&seq, 512).unwrap();
    assert_eq!(engine.shift_cost(&out.best().placement), out.best().cost);
    // The degraded best is exactly the incumbent's last improvement.
    assert_eq!(out.trace.last().unwrap().cost, out.best().cost);
}

/// Stalls and cache poisoning never change *what* a deterministic race
/// computes — only how long it takes. The eval-budget goldens must be
/// bit-identical with and without these faults.
#[test]
fn stalls_and_poisoning_do_not_perturb_deterministic_results() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 8);
    let cfg = PortfolioConfig::new(Budget::evals(600)).with_seed(5);
    let clean = Portfolio::new(cfg.clone())
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    let plan = FaultPlan::new()
        .inject(0, Fault::StallAfterEvals(10, Duration::from_millis(15)))
        .inject(1, Fault::PoisonCaches)
        .inject(2, Fault::PoisonCaches)
        .inject(3, Fault::StallAfterEvals(3, Duration::from_millis(5)));
    let faulty = Portfolio::new(cfg)
        .with_faults(plan)
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    assert_eq!(clean.winner, faulty.winner);
    assert_eq!(clean.total_evals, faulty.total_evals);
    for (c, f) in clean.lanes.iter().zip(&faulty.lanes) {
        let (co, fo) = (c.outcome.as_ref().unwrap(), f.outcome.as_ref().unwrap());
        assert_eq!(co.cost, fo.cost, "{} lane", c.spec);
        assert_eq!(co.placement, fo.placement);
        assert_eq!(co.evals, fo.evals);
    }
}

/// The hard-deadline contract under misbehaving lanes: a panicking lane, a
/// lane stalled far past the deadline, and a cache-poisoning lane — the
/// race still returns a valid placement within `deadline + grace`.
#[test]
fn deadline_holds_under_every_fault_kind() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 512);
    let deadline = Duration::from_millis(50);
    let cfg = PortfolioConfig::new(Budget::wall_clock(deadline));
    let grace = cfg.grace;
    let plan = FaultPlan::new()
        .inject(1, Fault::PanicAfterEvals(30))
        .inject(2, Fault::StallAfterEvals(5, Duration::from_secs(30)))
        .inject(3, Fault::PoisonCaches);
    let started = Instant::now();
    let out = Portfolio::new(cfg)
        .with_faults(plan)
        .run_with_engine(&engine, 2, 512, &seeds)
        .unwrap();
    let took = started.elapsed();
    assert!(
        took <= deadline + grace + SLACK,
        "race took {took:?}, bound is {:?}",
        deadline + grace + SLACK
    );
    out.best().placement.validate(&seq, 512).unwrap();
    assert_eq!(engine.shift_cost(&out.best().placement), out.best().cost);
    // On a small pool the race may cancel before the faulty lane reaches
    // its threshold; but if it did, the panic must surface in telemetry.
    match &out.lanes[1].status {
        LaneStatus::Panicked(msg) => {
            assert!(msg.contains("injected fault"), "unexpected payload: {msg}");
            assert!(out.lanes[1].outcome.is_none());
        }
        status => {
            let evals = out.lanes[1].outcome.as_ref().map_or(0, |o| o.evals);
            assert!(
                evals < 30,
                "lane ran {evals} evals past the fault threshold without \
                 panicking (status {status})"
            );
        }
    }
}

/// Sweep of seeded pseudo-random schedules: every one returns a valid
/// placement within the deadline bound (each schedule keeps one healthy
/// lane by construction).
#[test]
fn seeded_fault_schedules_always_yield_a_valid_placement() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 512);
    let deadline = Duration::from_millis(40);
    for fault_seed in 0..6u64 {
        let cfg = PortfolioConfig::new(Budget::wall_clock(deadline)).with_seed(fault_seed);
        let grace = cfg.grace;
        let started = Instant::now();
        let out = Portfolio::new(cfg)
            .with_faults(FaultPlan::from_seed(fault_seed, 4))
            .run_with_engine(&engine, 2, 512, &seeds)
            .unwrap_or_else(|e| panic!("schedule {fault_seed} failed: {e}"));
        let took = started.elapsed();
        assert!(
            took <= deadline + grace + SLACK,
            "schedule {fault_seed} took {took:?}"
        );
        out.best().placement.validate(&seq, 512).unwrap();
        assert_eq!(engine.shift_cost(&out.best().placement), out.best().cost);
    }
}

/// Compiling the harness in must not perturb fault-free deterministic
/// races: two identical runs stay bit-identical, lane for lane.
#[test]
fn fault_free_races_stay_bit_identical_with_the_feature_on() {
    let seq = AccessSequence::parse(PAPER_SEQ).unwrap();
    let (engine, seeds) = engine_and_seeds(&seq, 2, 8);
    let cfg = PortfolioConfig::new(Budget::evals(1_500))
        .with_seed(0xF0_2020)
        .with_lanes(vec![LaneSpec::Sa, LaneSpec::Tabu, LaneSpec::RandomWalk]);
    let a = Portfolio::new(cfg.clone())
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    let b = Portfolio::new(cfg)
        .run_with_engine(&engine, 2, 8, &seeds)
        .unwrap();
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.total_evals, b.total_evals);
    for (x, y) in a.lanes.iter().zip(&b.lanes) {
        let (xo, yo) = (x.outcome.as_ref().unwrap(), y.outcome.as_ref().unwrap());
        assert_eq!(xo.placement, yo.placement, "{} lane", x.spec);
        assert_eq!(xo.evals, yo.evals);
    }
}
