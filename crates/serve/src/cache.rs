//! The cross-request cache: canonical query text → parsed trace → warm
//! [`Session`] per requested geometry.
//!
//! Two levels, both keyed structurally:
//!
//! 1. **Trace level** — a [`Fingerprint`] of the canonical query text
//!    nominates candidate entries; the stored text is then compared
//!    **byte-for-byte** before an entry is served. The fingerprint is an
//!    index accelerator, never an identity: even two texts with fully
//!    colliding digests can't cross-hit (`DESIGN.md` §11), so a repeat
//!    query reuses the parsed [`AccessSequence`] and a mismatched one
//!    never can.
//! 2. **Session level** — per cached trace, one [`Session`] per requested
//!    geometry `(dbcs, capacity, ports, shards)`. A session hit lands on a
//!    warm engine: position index built, memo shards populated, heuristic
//!    seeds cached. Sessions run on the server's one global
//!    [`WorkerPool`], so N concurrent warm engines can't oversubscribe
//!    the host.
//!
//! Capacity is bounded: beyond `max_traces` entries the least-recently-used
//! trace (and all its sessions) is evicted. Eviction and sharing never
//! change results — a session is a pure function of (trace, geometry), and
//! warm ≡ cold bit-identity is the engine's contract.

use crate::fingerprint::Fingerprint;
use rtm_placement::{PlacementProblem, Session, WorkerPool};
use rtm_trace::AccessSequence;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The engine-relevant geometry of a placement request. Worker count is
/// deliberately absent: every session draws from the server's global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeometryKey {
    /// Number of DBCs `q`.
    pub dbcs: usize,
    /// Locations per DBC `N`.
    pub capacity: usize,
    /// Access ports per track.
    pub ports: usize,
    /// Engine cache shard count (`0` = auto). Part of the key so a shard
    /// override gets its own engine; results are identical either way.
    pub shards: usize,
}

/// One cached trace and its per-geometry warm sessions.
#[derive(Debug)]
pub struct TraceEntry {
    /// The canonical query text — the identity the fingerprint only
    /// approximates.
    text: Arc<str>,
    seq: Arc<AccessSequence>,
    sessions: Mutex<HashMap<GeometryKey, Arc<Session>>>,
    last_used: AtomicU64,
}

impl TraceEntry {
    /// The shared parsed trace.
    pub fn seq(&self) -> Arc<AccessSequence> {
        Arc::clone(&self.seq)
    }

    /// The canonical query text this entry answers for.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of warm sessions held for this trace.
    fn session_count(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// Monotonic counters of the cache's behavior (snapshot via
/// [`SessionCache::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries whose canonical text was already cached.
    pub trace_hits: u64,
    /// Queries that parsed (or generated) a fresh trace.
    pub trace_misses: u64,
    /// Queries served by an existing warm session.
    pub session_hits: u64,
    /// Queries that built a fresh session for a cached or new trace.
    pub session_misses: u64,
    /// Trace entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Fingerprint matches rejected by the byte-for-byte text comparison —
    /// a nonzero value is a *working defense*, not a failure.
    pub collisions_rejected: u64,
    /// Trace entries currently cached.
    pub cached_traces: usize,
    /// Warm sessions currently cached (across all traces).
    pub cached_sessions: usize,
}

/// The cross-request cache. See the [module docs](self).
#[derive(Debug)]
pub struct SessionCache {
    pool: Arc<WorkerPool>,
    traces: Mutex<HashMap<Fingerprint, Vec<Arc<TraceEntry>>>>,
    max_traces: usize,
    tick: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    session_hits: AtomicU64,
    session_misses: AtomicU64,
    evictions: AtomicU64,
    collisions_rejected: AtomicU64,
}

impl SessionCache {
    /// Creates a cache whose sessions all run on `pool`, holding at most
    /// `max_traces` trace entries (≥ 1).
    pub fn new(pool: Arc<WorkerPool>, max_traces: usize) -> Self {
        Self {
            pool,
            traces: Mutex::new(HashMap::new()),
            max_traces: max_traces.max(1),
            tick: AtomicU64::new(0),
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            session_hits: AtomicU64::new(0),
            session_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions_rejected: AtomicU64::new(0),
        }
    }

    /// The global worker pool every cached session runs on.
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// Looks up `text`'s entry, parsing via `parse` on a miss. Returns the
    /// entry and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `parse`'s error on a miss (nothing is cached then).
    pub fn get_or_parse<E>(
        &self,
        text: &str,
        parse: impl FnOnce() -> Result<AccessSequence, E>,
    ) -> Result<(Arc<TraceEntry>, bool), E> {
        let fp = Fingerprint::of_text(text);
        if let Some(entry) = self.lookup(fp, text) {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry, true));
        }
        // Parse outside the lock: traces can be large, and a slow parse
        // must not stall unrelated queries.
        let seq = Arc::new(parse()?);
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        Ok((self.insert(fp, text, seq), false))
    }

    /// A fingerprint-nominated, text-verified lookup. The text comparison
    /// is the identity check: an entry whose fingerprint matches but whose
    /// text differs is counted and skipped, never served.
    fn lookup(&self, fp: Fingerprint, text: &str) -> Option<Arc<TraceEntry>> {
        let map = self
            .traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = map.get(&fp)?;
        let mut collisions = 0u64;
        let mut found = None;
        for entry in bucket {
            if &*entry.text == text {
                entry
                    .last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                found = Some(Arc::clone(entry));
                break;
            }
            collisions += 1;
        }
        drop(map);
        if collisions > 0 {
            self.collisions_rejected
                .fetch_add(collisions, Ordering::Relaxed);
        }
        found
    }

    /// Inserts (or, if another thread won the race, returns the winner's)
    /// entry for `text`, evicting the least-recently-used trace beyond the
    /// capacity bound.
    fn insert(&self, fp: Fingerprint, text: &str, seq: Arc<AccessSequence>) -> Arc<TraceEntry> {
        let mut map = self
            .traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = map.entry(fp).or_default();
        if let Some(existing) = bucket.iter().find(|e| &*e.text == text) {
            return Arc::clone(existing);
        }
        let entry = Arc::new(TraceEntry {
            text: Arc::from(text),
            seq,
            sessions: Mutex::new(HashMap::new()),
            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
        });
        bucket.push(Arc::clone(&entry));
        // LRU eviction keeps the cache bounded; the freshly inserted entry
        // has the newest tick and can't evict itself.
        while map.values().map(Vec::len).sum::<usize>() > self.max_traces {
            let oldest = map
                .iter()
                .flat_map(|(k, v)| {
                    v.iter()
                        .map(move |e| (*k, Arc::clone(e), e.last_used.load(Ordering::Relaxed)))
                })
                .min_by_key(|(_, _, used)| *used);
            let Some((k, victim, _)) = oldest else { break };
            if let Some(bucket) = map.get_mut(&k) {
                bucket.retain(|e| !Arc::ptr_eq(e, &victim));
                if bucket.is_empty() {
                    map.remove(&k);
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entry
    }

    /// The warm session for (`entry`, `key`), building it on first use.
    /// Returns the session and whether it was a hit.
    pub fn session(&self, entry: &TraceEntry, key: GeometryKey) -> (Arc<Session>, bool) {
        let mut sessions = entry
            .sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(s) = sessions.get(&key) {
            self.session_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(s), true);
        }
        let problem = PlacementProblem::shared(entry.seq(), key.dbcs, key.capacity)
            .with_ports(key.ports)
            .with_shards(key.shards);
        let session = Arc::new(Session::new(problem).with_worker_pool(self.pool()));
        sessions.insert(key, Arc::clone(&session));
        self.session_misses.fetch_add(1, Ordering::Relaxed);
        (session, false)
    }

    /// Snapshot of the cache counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        let map = self
            .traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let cached_traces = map.values().map(Vec::len).sum();
        let cached_sessions = map
            .values()
            .flatten()
            .map(|e| e.session_count())
            .sum::<usize>();
        drop(map);
        CacheStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            session_hits: self.session_hits.load(Ordering::Relaxed),
            session_misses: self.session_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions_rejected: self.collisions_rejected.load(Ordering::Relaxed),
            cached_traces,
            cached_sessions,
        }
    }

    /// Poisons the cache shards of every warm session (fault injection —
    /// `--features faults` only). The engines recover per shard on the
    /// next solve with unchanged results; the live-session fault tests pin
    /// exactly that.
    #[cfg(feature = "faults")]
    pub fn poison_all_sessions(&self) {
        let map = self
            .traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for entry in map.values().flatten() {
            let sessions = entry
                .sessions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for session in sessions.values() {
                session.poison_caches();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(max: usize) -> SessionCache {
        SessionCache::new(Arc::new(WorkerPool::new(1)), max)
    }

    fn parse_ok(text: &str) -> Result<AccessSequence, String> {
        AccessSequence::parse(text).map_err(|e| e.to_string())
    }

    const KEY: GeometryKey = GeometryKey {
        dbcs: 2,
        capacity: 64,
        ports: 1,
        shards: 0,
    };

    #[test]
    fn repeat_text_hits_and_shares_the_parse() {
        let c = cache(8);
        let (a, hit_a) = c
            .get_or_parse("a b a b c", || parse_ok("a b a b c"))
            .unwrap();
        let (b, hit_b) = c
            .get_or_parse("a b a b c", || parse_ok("a b a b c"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a.seq(), &b.seq()), "parse was not shared");
        let s = c.stats();
        assert_eq!((s.trace_hits, s.trace_misses), (1, 1));
    }

    #[test]
    fn sessions_are_per_geometry_and_warm() {
        let c = cache(8);
        let (e, _) = c
            .get_or_parse("a b a b c c", || parse_ok("a b a b c c"))
            .unwrap();
        let (s1, hit1) = c.session(&e, KEY);
        let (s2, hit2) = c.session(&e, KEY);
        let (s3, hit3) = c.session(&e, GeometryKey { dbcs: 4, ..KEY });
        assert!(!hit1 && hit2 && !hit3);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(c.stats().cached_sessions, 2);
    }

    /// The collision-behavior satellite: even a *fully colliding*
    /// fingerprint cannot make a mismatched trace hit, because identity is
    /// the stored text, not the digest. We force the collision directly —
    /// engineering a real 256-bit digest collision being infeasible is the
    /// point — by planting an entry under a forged fingerprint key.
    #[test]
    fn mismatched_trace_never_hits_even_under_full_fingerprint_collision() {
        let c = cache(8);
        let fp_b = Fingerprint::of_text("x y x y");
        // Plant trace A's entry in trace B's bucket: from here on, B's
        // fingerprint lookup nominates A's entry.
        let seq_a = Arc::new(parse_ok("a b a b").unwrap());
        c.insert(fp_b, "a b a b", seq_a);
        assert!(c.lookup(fp_b, "x y x y").is_none(), "collision served");
        assert_eq!(c.stats().collisions_rejected, 1);
        // And the querying path parses B fresh rather than serving A.
        let (e, hit) = c.get_or_parse("x y x y", || parse_ok("x y x y")).unwrap();
        assert!(!hit);
        assert_eq!(e.text(), "x y x y");
        assert_eq!(e.seq().accesses().len(), 4);
    }

    #[test]
    fn parse_failures_cache_nothing() {
        let c = cache(8);
        assert!(c.get_or_parse("bad :q", || parse_ok("bad :q")).is_err());
        let s = c.stats();
        assert_eq!(s.cached_traces, 0);
        assert_eq!(s.trace_misses, 0);
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let c = cache(2);
        for text in ["a a", "b b", "a a", "c c"] {
            c.get_or_parse(text, || parse_ok(text)).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.cached_traces, 2);
        assert_eq!(s.evictions, 1);
        // "b b" was least recently used; "a a" survived its re-touch.
        assert!(c.lookup(Fingerprint::of_text("a a"), "a a").is_some());
        assert!(c.lookup(Fingerprint::of_text("b b"), "b b").is_none());
    }

    #[test]
    fn racing_inserts_converge_on_one_entry() {
        let c = Arc::new(cache(8));
        let entries: Vec<_> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        let (e, _) = c.get_or_parse("r s r s", || parse_ok("r s r s")).unwrap();
                        e
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(c.stats().cached_traces, 1);
        for e in &entries[1..] {
            assert!(Arc::ptr_eq(&entries[0].seq(), &e.seq()));
        }
    }
}
