//! Structural trace fingerprints for the cross-request cache.
//!
//! The obvious key — a single 64-bit FNV-1a-style hash like the tier-seed
//! derivation uses — is wrong for a *serving* cache: a 64-bit collision
//! between two different traces would silently return a placement for the
//! wrong program, and nothing downstream would notice. This fingerprint is
//! structural (byte length + whitespace token count + a 4-lane 256-bit
//! mixed digest), which makes accidental collisions astronomically
//! unlikely — and the cache still does **not** trust it: a fingerprint
//! match only nominates candidates, and [`SessionCache`](crate::cache)
//! compares the stored canonical query text byte-for-byte before serving
//! anything. A mismatched trace therefore *cannot* hit, even against an
//! adversarially colliding digest (pinned by the collision-behavior test
//! in `cache.rs`).

use std::fmt;

/// Per-lane mixing constants: distinct odd multipliers and offsets, so the
/// four lanes are independent 64-bit mixes of the same byte stream.
const LANES: [(u64, u64); 4] = [
    (0x9e37_79b9_7f4a_7c15, 0x243f_6a88_85a3_08d3),
    (0xc2b2_ae3d_27d4_eb4f, 0x1319_8a2e_0370_7344),
    (0x1656_67b1_9e37_79f9, 0xa409_3822_299f_31d0),
    (0x27d4_eb2f_1656_67c5, 0x082e_fa98_ec4e_6c89),
];

/// A structural fingerprint of a canonical query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Byte length of the text.
    pub len: u64,
    /// Whitespace-separated token count (the access count for inline
    /// traces).
    pub tokens: u64,
    /// Four independent 64-bit digest lanes.
    pub digest: [u64; 4],
}

/// Finalizing mix (splitmix64's avalanche), applied per lane.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Fingerprint {
    /// Fingerprints a canonical query text.
    pub fn of_text(text: &str) -> Self {
        let mut digest = [0u64; 4];
        for (lane, &(mul, offset)) in LANES.iter().enumerate() {
            let mut h = offset ^ (text.len() as u64).wrapping_mul(mul);
            for &b in text.as_bytes() {
                h = h.rotate_left(13) ^ u64::from(b);
                h = h.wrapping_mul(mul);
            }
            digest[lane] = avalanche(h);
        }
        Self {
            len: text.len() as u64,
            tokens: text.split_whitespace().count() as u64,
            digest,
        }
    }
}

impl fmt::Display for Fingerprint {
    /// Compact hex form reported in serve responses and stats.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}-{:016x}{:016x}{:016x}{:016x}",
            self.len, self.tokens, self.digest[0], self.digest[1], self.digest[2], self.digest[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_text_equal_fingerprint() {
        let a = Fingerprint::of_text("a b a b c");
        let b = Fingerprint::of_text("a b a b c");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.len, 9);
        assert_eq!(a.tokens, 5);
    }

    #[test]
    fn structure_alone_separates_many_near_misses() {
        // Same length + token count, different content: every lane moves.
        let a = Fingerprint::of_text("a b a b c");
        let b = Fingerprint::of_text("a b a b d");
        assert_eq!((a.len, a.tokens), (b.len, b.tokens));
        for lane in 0..4 {
            assert_ne!(a.digest[lane], b.digest[lane], "lane {lane} collided");
        }
        // Transpositions, extensions, and case changes all separate.
        for other in ["b a a b c", "a b a b c ", "A b a b c", "a b a bc"] {
            assert_ne!(a, Fingerprint::of_text(other), "{other:?}");
        }
    }

    #[test]
    fn lanes_are_independent() {
        // A pair of texts engineered to agree on nothing: the 4 lanes must
        // not be trivial transforms of one another (catching a copy-paste
        // bug that would collapse the 256-bit digest to 64 bits).
        let f = Fingerprint::of_text("x y z w q");
        let mut lanes = f.digest.to_vec();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 4, "duplicate digest lanes in {f}");
    }
}
