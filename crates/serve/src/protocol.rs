//! The line protocol: one request per line, one response line back.
//!
//! ```text
//! ping
//! stats
//! shutdown
//! place [key=value …] :: <trace text>
//! place profile=NAME [scale=S] [key=value …]
//! ```
//!
//! `place` keys mirror the CLI options exactly (`strategy`, `dbcs`,
//! `capacity`, `ports`, `shards`, `budget-evals`, `budget-ms`,
//! `budget-stall`, `seed`, `lanes`) plus the serve-only `deadline-ms` —
//! same names, same defaults, so a serve query and an `rtm place`
//! invocation describe the same problem (pinned by the bit-identity
//! integration tests, which compare the two end to end). Inline trace text
//! follows a literal ` :: ` separator; a two-character `\n` escape embeds
//! line breaks so multi-line traces survive the one-line framing (and
//! parse errors report real line/column positions).
//!
//! Successful responses are one line of JSON. Failures are one line
//! starting with `error: ` — carrying `ParseTraceError`'s line and column
//! when the trace text is at fault — and never kill the connection, let
//! alone the daemon.

use rtm_placement::{
    Budget, GaConfig, LaneSpec, PlacementError, PlacementProblem, RandomWalkConfig, SaConfig,
    Solution, Strategy, TabuConfig,
};
use rtm_placement::{PortfolioConfig, StrategyKind};
use rtm_trace::{AccessSequence, ParseTraceError};
use std::fmt;

use crate::cache::GeometryKey;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server + cache counters.
    Stats,
    /// Stop accepting and drain.
    Shutdown,
    /// Solve a placement query.
    Place(Box<PlaceRequest>),
}

/// Where a query's trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySource {
    /// Inline trace text (after `\n`-unescaping).
    Inline(String),
    /// A deterministic tier workload (`rtm suite` names).
    Profile {
        /// Tier workload name (e.g. `expected-dsp`).
        name: String,
        /// Scale factor (default 1.0).
        scale: f64,
    },
}

/// One placement query. Field defaults mirror the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceRequest {
    /// Trace source.
    pub source: QuerySource,
    /// Strategy CLI name (default `dma-sr`).
    pub strategy: String,
    /// DBC count (default 4).
    pub dbcs: usize,
    /// Locations per DBC (default: the paper's 4 KiB track, grown to fit).
    pub capacity: Option<usize>,
    /// Access ports per track (default 1).
    pub ports: usize,
    /// Engine cache shards (default 0 = auto).
    pub shards: usize,
    /// `--budget-evals` equivalent.
    pub budget_evals: Option<u64>,
    /// `--budget-ms` equivalent.
    pub budget_ms: Option<u64>,
    /// `--budget-stall` equivalent.
    pub budget_stall: Option<u64>,
    /// `--seed` equivalent.
    pub seed: Option<u64>,
    /// `--lanes` equivalent (portfolio only).
    pub lanes: Option<String>,
    /// Per-request deadline override (the server's default applies
    /// otherwise).
    pub deadline_ms: Option<u64>,
}

/// Why a request could not be served. `Trace` preserves the parse error's
/// structure so responses can carry its line and column.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The request line itself is malformed (unknown command/key, bad
    /// number, missing trace, …).
    Malformed(String),
    /// The inline trace text failed to parse.
    Trace(ParseTraceError),
    /// The query is well-formed but unsolvable (capacity too small, …).
    Placement(String),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Malformed(m) => write!(f, "{m}"),
            // ParseTraceError's Display includes "(line L, column C)".
            RequestError::Trace(e) => write!(f, "invalid trace: {e}"),
            RequestError::Placement(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<ParseTraceError> for RequestError {
    fn from(e: ParseTraceError) -> Self {
        RequestError::Trace(e)
    }
}

impl From<PlacementError> for RequestError {
    fn from(e: PlacementError) -> Self {
        RequestError::Placement(e.to_string())
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`RequestError::Malformed`] for anything that is not a well-formed
/// command.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let line = line.trim();
    match line {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        _ => {
            let rest = line
                .strip_prefix("place")
                .filter(|r| r.is_empty() || r.starts_with(' '))
                .ok_or_else(|| {
                    RequestError::Malformed(format!(
                        "unknown command `{}` (expected ping|stats|shutdown|place)",
                        line.split_whitespace().next().unwrap_or("")
                    ))
                })?;
            Ok(Request::Place(Box::new(PlaceRequest::parse(rest)?)))
        }
    }
}

/// Replaces the two-character `\n` escape with a real newline (and `\\`
/// with a backslash, so a literal `\n` stays expressible).
fn unescape_trace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl PlaceRequest {
    /// Parses the key-value options (and optional ` :: trace` tail) of a
    /// `place` line.
    fn parse(rest: &str) -> Result<Self, RequestError> {
        let (opts, trace) = match rest.split_once(" :: ") {
            Some((o, t)) => (o, Some(t)),
            None => match rest.strip_suffix(" ::") {
                Some(o) => (o, Some("")),
                None => (rest, None),
            },
        };
        let mut req = PlaceRequest {
            source: QuerySource::Inline(String::new()),
            strategy: "dma-sr".to_string(),
            dbcs: 4,
            capacity: None,
            ports: 1,
            shards: 0,
            budget_evals: None,
            budget_ms: None,
            budget_stall: None,
            seed: None,
            lanes: None,
            deadline_ms: None,
        };
        let mut profile: Option<String> = None;
        let mut scale: f64 = 1.0;
        for tok in opts.split_whitespace() {
            let (key, value) = tok.split_once('=').ok_or_else(|| {
                RequestError::Malformed(format!("expected key=value, got `{tok}`"))
            })?;
            fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, RequestError> {
                value.parse().map_err(|_| {
                    RequestError::Malformed(format!("bad number for `{key}`: `{value}`"))
                })
            }
            match key {
                "strategy" => req.strategy = value.to_string(),
                "dbcs" => req.dbcs = num(key, value)?,
                "capacity" => req.capacity = Some(num(key, value)?),
                "ports" => req.ports = num(key, value)?,
                "shards" => req.shards = num(key, value)?,
                "budget-evals" => req.budget_evals = Some(num(key, value)?),
                "budget-ms" => req.budget_ms = Some(num(key, value)?),
                "budget-stall" => req.budget_stall = Some(num(key, value)?),
                "seed" => req.seed = Some(num(key, value)?),
                "lanes" => req.lanes = Some(value.to_string()),
                "deadline-ms" => req.deadline_ms = Some(num(key, value)?),
                "profile" => profile = Some(value.to_string()),
                "scale" => scale = num(key, value)?,
                other => return Err(RequestError::Malformed(format!("unknown option `{other}`"))),
            }
        }
        req.source = match (profile, trace) {
            (Some(_), Some(_)) => {
                return Err(RequestError::Malformed(
                    "profile= and an inline `:: trace` are mutually exclusive".into(),
                ))
            }
            (Some(name), None) => {
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(RequestError::Malformed(
                        "scale must be a positive number".into(),
                    ));
                }
                QuerySource::Profile { name, scale }
            }
            (None, Some(t)) if !t.trim().is_empty() => QuerySource::Inline(unescape_trace(t)),
            _ => {
                return Err(RequestError::Malformed(
                    "missing trace: add ` :: <trace text>` or profile=NAME".into(),
                ))
            }
        };
        if req.dbcs == 0 {
            return Err(RequestError::Malformed("dbcs must be at least 1".into()));
        }
        if req.ports == 0 {
            return Err(RequestError::Malformed("ports must be at least 1".into()));
        }
        Ok(req)
    }

    /// The canonical cache-key text of this query's trace: the unescaped
    /// inline text verbatim, or a `profile:NAME@SCALE` tag (tier workloads
    /// are deterministic functions of name and scale).
    pub fn canonical_text(&self) -> String {
        match &self.source {
            QuerySource::Inline(t) => t.clone(),
            QuerySource::Profile { name, scale } => format!("profile:{name}@{scale}"),
        }
    }

    /// Parses or generates the trace.
    ///
    /// # Errors
    ///
    /// [`RequestError::Trace`] with line/column for bad inline text;
    /// [`RequestError::Malformed`] for an unknown profile name.
    pub fn materialize(&self) -> Result<AccessSequence, RequestError> {
        match &self.source {
            QuerySource::Inline(t) => Ok(AccessSequence::parse(t)?),
            QuerySource::Profile { name, scale } => {
                rtm_offsetstone::TierWorkload::by_name(name, *scale)
                    .map(|w| w.generate())
                    .ok_or_else(|| RequestError::Malformed(format!("unknown profile `{name}`")))
            }
        }
    }

    /// Resolves the engine-relevant geometry, defaulting the capacity
    /// exactly as the CLI does for flat problems (the paper's 4 KiB track,
    /// grown to fit the variable count).
    ///
    /// # Errors
    ///
    /// [`RequestError::Malformed`] when ports exceed the track length.
    pub fn geometry(&self, seq: &AccessSequence) -> Result<GeometryKey, RequestError> {
        let paper_cap = 4096 * 8 / (self.dbcs * 32).max(1);
        let capacity = self
            .capacity
            .unwrap_or_else(|| paper_cap.max(seq.vars().len().div_ceil(self.dbcs)));
        if capacity == 0 {
            return Err(RequestError::Malformed(
                "capacity must be at least 1".into(),
            ));
        }
        if self.ports > capacity {
            return Err(RequestError::Malformed(format!(
                "ports {} exceeds the track length {capacity}",
                self.ports
            )));
        }
        Ok(GeometryKey {
            dbcs: self.dbcs,
            capacity,
            ports: self.ports,
            shards: self.shards,
        })
    }

    /// The search budget implied by the request's `budget-*` keys (the
    /// CLI's rules verbatim), with the effective deadline — the request's
    /// `deadline-ms`, or `default_deadline_ms` — layered on as a
    /// wall-clock bound. A tighter explicit `budget-ms` survives; the
    /// deadline only ever shortens.
    pub fn budget(&self, default_deadline_ms: u64) -> Budget {
        let mut budget = match (self.budget_evals, self.budget_ms) {
            (Some(n), _) => Budget::evals(n),
            (None, Some(m)) => Budget::wall_clock_ms(m),
            (None, None) => Budget::evals(50_000),
        };
        if let (Some(_), Some(m)) = (self.budget_evals, self.budget_ms) {
            budget = budget.and_wall_clock_ms(m);
        }
        if let Some(s) = self.budget_stall {
            budget = budget.and_stall(s);
        }
        let deadline = self.deadline_ms.unwrap_or(default_deadline_ms);
        let effective = match budget.deadline() {
            Some(d) => u64::try_from(d.as_millis())
                .unwrap_or(u64::MAX)
                .min(deadline),
            None => deadline,
        };
        budget.and_wall_clock_ms(effective)
    }

    /// Resolves the [`Strategy`], mirroring the CLI's name table and
    /// search defaults. Search strategies carry [`budget`](Self::budget)
    /// (deadline included); the deterministic heuristics and the paper's
    /// fixed-iteration GA/RW ignore the budget by construction.
    ///
    /// # Errors
    ///
    /// [`RequestError::Malformed`] for unknown strategy or lane names.
    pub fn resolve_strategy(&self, default_deadline_ms: u64) -> Result<Strategy, RequestError> {
        let budget = self.budget(default_deadline_ms);
        Ok(match self.strategy.as_str() {
            "afd" => Strategy::AfdNative,
            "afd-ofu" => Strategy::AfdOfu,
            "dma" => Strategy::DmaNative,
            "dma-ofu" => Strategy::DmaOfu,
            "dma-chen" => Strategy::DmaChen,
            "dma-sr" => Strategy::DmaSr,
            "dma-multi-sr" => Strategy::DmaMultiSr,
            "ga" => Strategy::Ga(GaConfig::paper()),
            "rw" => Strategy::RandomWalk(RandomWalkConfig::paper()),
            "sa" => {
                let mut cfg = SaConfig::new(budget);
                if let Some(seed) = self.seed {
                    cfg = cfg.with_seed(seed);
                }
                Strategy::Sa(cfg)
            }
            "tabu" => {
                let mut cfg = TabuConfig::new(budget);
                if let Some(seed) = self.seed {
                    cfg = cfg.with_seed(seed);
                }
                Strategy::Tabu(cfg)
            }
            "portfolio" => {
                let mut cfg = PortfolioConfig::new(budget);
                if let Some(seed) = self.seed {
                    cfg = cfg.with_seed(seed);
                }
                if let Some(lanes) = &self.lanes {
                    let parsed: Vec<LaneSpec> = lanes
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            LaneSpec::parse(s).ok_or_else(|| {
                                RequestError::Malformed(format!(
                                    "unknown lane `{s}` (sa|tabu|ga|rw)"
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err(RequestError::Malformed(
                            "lanes needs at least one of sa,tabu,ga,rw".into(),
                        ));
                    }
                    cfg.lanes = parsed;
                }
                Strategy::Portfolio(cfg)
            }
            other => {
                let known: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.cli_name()).collect();
                return Err(RequestError::Malformed(format!(
                    "unknown strategy `{other}` (one of {})",
                    known.join(", ")
                )));
            }
        })
    }

    /// The cold single-shot reference for this query: a fresh
    /// [`PlacementProblem`] solved outside any cache or shared pool. The
    /// server's warm concurrent answers must be bit-identical to this —
    /// it's what the load generator and the correctness tests compare
    /// against.
    ///
    /// # Errors
    ///
    /// Any [`RequestError`] the serving path would also report.
    pub fn reference_solution(
        &self,
        default_deadline_ms: u64,
    ) -> Result<(Strategy, GeometryKey, AccessSequence, Solution), RequestError> {
        let strategy = self.resolve_strategy(default_deadline_ms)?;
        let seq = self.materialize()?;
        let geom = self.geometry(&seq)?;
        let problem = PlacementProblem::new(seq.clone(), geom.dbcs, geom.capacity)
            .with_ports(geom.ports)
            .with_shards(geom.shards);
        let solution = problem.solve(&strategy)?;
        Ok((strategy, geom, seq, solution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(line: &str) -> PlaceRequest {
        match parse_request(line).unwrap() {
            Request::Place(p) => *p,
            other => panic!("expected place, got {other:?}"),
        }
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_request(" ping "), Ok(Request::Ping));
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("shutdown"), Ok(Request::Shutdown));
        assert!(parse_request("nope").is_err());
        assert!(parse_request("placebo x").is_err());
    }

    #[test]
    fn place_defaults_mirror_the_cli() {
        let r = place("place :: a b a b");
        assert_eq!(r.strategy, "dma-sr");
        assert_eq!((r.dbcs, r.ports, r.shards), (4, 1, 0));
        assert_eq!(r.capacity, None);
        let seq = r.materialize().unwrap();
        // 4 DBCs: the paper's 4 KiB track is 4096*8/(4*32) = 256.
        assert_eq!(r.geometry(&seq).unwrap().capacity, 256);
    }

    #[test]
    fn options_and_inline_trace_parse() {
        let r =
            place("place strategy=sa dbcs=2 budget-evals=300 seed=7 deadline-ms=900 :: a b a b c");
        assert_eq!(r.strategy, "sa");
        assert_eq!(r.dbcs, 2);
        assert_eq!(r.budget_evals, Some(300));
        assert_eq!(r.deadline_ms, Some(900));
        assert_eq!(r.canonical_text(), "a b a b c");
        assert!(matches!(
            r.resolve_strategy(10_000).unwrap(),
            Strategy::Sa(_)
        ));
    }

    #[test]
    fn profile_queries_have_a_stable_canonical_tag() {
        let r = place("place profile=expected-dsp scale=0.25 strategy=dma-sr");
        assert_eq!(r.canonical_text(), "profile:expected-dsp@0.25");
        assert!(r.materialize().is_ok());
        assert!(place("place profile=nope").materialize().is_err());
    }

    #[test]
    fn escaped_newlines_reach_the_parser_as_line_breaks() {
        let r = place("place dbcs=2 :: a b\\na b\\nc :q");
        // The bad token sits on line 3, column 3 of the unescaped text.
        match r.materialize() {
            Err(RequestError::Trace(e)) => {
                assert_eq!((e.line(), e.column()), (3, 3));
                let msg = RequestError::Trace(e).to_string();
                assert!(msg.contains("line 3"), "{msg}");
                assert!(msg.contains("column 3"), "{msg}");
            }
            other => panic!("expected trace error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("place", "missing trace"),
            ("place strategy=sa", "missing trace"),
            ("place bogus=1 :: a b", "unknown option"),
            ("place dbcs=zero :: a b", "bad number"),
            ("place dbcs=0 :: a b", "dbcs"),
            ("place ports=0 :: a b", "ports"),
            ("place profile=x :: a b", "mutually exclusive"),
            ("place strategy=bogus :: a b", "unknown strategy"),
            ("place scale=-2 profile=expected-dsp", "scale"),
        ] {
            match parse_request(line).map(|r| match r {
                Request::Place(p) => p.resolve_strategy(1000).map(|_| ()),
                _ => Ok(()),
            }) {
                Err(e) | Ok(Err(e)) => {
                    assert!(e.to_string().contains(needle), "`{line}`: {e}")
                }
                Ok(Ok(())) => panic!("`{line}` should fail"),
            }
        }
    }

    #[test]
    fn deadline_only_ever_shortens() {
        let r = place("place strategy=sa budget-evals=100 budget-ms=50 :: a b");
        // Explicit 50 ms budget is tighter than the 10 s default deadline.
        assert_eq!(
            r.budget(10_000).deadline(),
            Some(std::time::Duration::from_millis(50))
        );
        // A tight per-request deadline wins over a loose budget.
        let r = place("place strategy=sa budget-ms=5000 deadline-ms=200 :: a b");
        assert_eq!(
            r.budget(10_000).deadline(),
            Some(std::time::Duration::from_millis(200))
        );
        // Pure evals budgets still get the liveness backstop.
        let r = place("place strategy=sa budget-evals=100 :: a b");
        assert_eq!(
            r.budget(10_000).deadline(),
            Some(std::time::Duration::from_secs(10))
        );
    }

    #[test]
    fn reference_solution_solves_the_query() {
        let r = place("place strategy=dma-sr dbcs=2 :: a b a b c a c a");
        let (strategy, geom, seq, sol) = r.reference_solution(10_000).unwrap();
        assert_eq!(strategy, Strategy::DmaSr);
        assert_eq!(geom.dbcs, 2);
        assert_eq!(seq.accesses().len(), 8);
        assert!(sol.shifts > 0);
    }
}
