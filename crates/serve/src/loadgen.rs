//! The load generator: replays a mixed query stream against a live
//! daemon and measures what the serving layer claims to deliver.
//!
//! Three phases per run:
//!
//! 1. **Reference** — every unique query is solved *in process* with a
//!    fresh [`PlacementProblem`](rtm_placement::PlacementProblem) (no
//!    cache, no shared pool): the cold single-shot answers the daemon's
//!    responses must be bit-identical to.
//! 2. **Warmup (sequential)** — each query once over one connection:
//!    cold latencies and cold `dbc_recomputations`, then once more for
//!    the clean warm counts (sequential, so per-solve stat deltas aren't
//!    interleaved by concurrent solves on the same session).
//! 3. **Concurrent** — `clients` connections replay the whole mix
//!    `rounds` times each: client-side latency percentiles, server-side
//!    `elapsed_ms` percentiles (what the deadline gate judges), and a
//!    bit-identity check of every response's deterministic payload
//!    against the phase-1 reference.
//!
//! The result is a [`LoadReport`]; `rtm-bench serve` serializes it to
//! `BENCH_serve.json` and CI greps the verdict fields.

use crate::json;
use crate::protocol::{parse_request, PlaceRequest, Request};
use crate::report::{deterministic_slice, solution_fields, Geometry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Concurrent client connections in phase 3.
    pub clients: usize,
    /// Times each client replays the full query mix.
    pub rounds: usize,
    /// Must match the server's `default_deadline_ms` so the in-process
    /// references resolve identical budgets.
    pub default_deadline_ms: u64,
}

/// Nearest-rank latency percentiles (milliseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `samples` (sorted in place).
    pub fn of(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = |p: f64| {
            let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Self {
            p50: at(50.0),
            p95: at(95.0),
            p99: at(99.0),
            max: samples[samples.len() - 1],
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Unique queries in the mix.
    pub queries: usize,
    /// Total `place` requests sent (all phases).
    pub requests: u64,
    /// Every response's deterministic payload matched its cold in-process
    /// reference.
    pub identical: bool,
    /// Responses whose payload differed from the reference.
    pub mismatches: u64,
    /// `error:` responses received (expected: none).
    pub errors: u64,
    /// Client-observed round-trip latency, concurrent phase.
    pub client_ms: Percentiles,
    /// Server-reported `elapsed_ms`, concurrent phase (the deadline gate
    /// judges this — it excludes client/socket overhead).
    pub server_ms: Percentiles,
    /// Σ cold `dbc_recomputations` over the mix (first solves).
    pub cold_recomputations: u64,
    /// Σ warm `dbc_recomputations` over the mix (sequential re-solves).
    pub warm_recomputations: u64,
    /// The warm pass recomputed strictly less than the cold pass.
    pub warm_cache_win: bool,
    /// Cold Σ client latency over the mix (warmup pass), ms.
    pub cold_mix_ms: f64,
    /// Warm Σ client latency over the mix (sequential re-pass), ms.
    pub warm_mix_ms: f64,
    /// trace_hits / (trace_hits + trace_misses) from the daemon's final
    /// `stats`.
    pub trace_hit_rate: f64,
    /// session_hits / (session_hits + session_misses), ditto.
    pub session_hit_rate: f64,
    /// The default deadline the gate compares `server_ms.p99` against.
    pub deadline_ms: u64,
}

/// A connected protocol client (one line out, one line in).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone socket: {e}"))?,
        );
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut resp = String::new();
        self.reader
            .read_line(&mut resp)
            .map_err(|e| format!("recv: {e}"))?;
        if resp.is_empty() {
            return Err("connection closed by server".into());
        }
        Ok(resp.trim_end().to_string())
    }
}

/// The standard mixed workload: every expected/stress tier crossed with a
/// representative strategy spread — deterministic heuristics, the paper's
/// GA, and seeded eval-budget SA/tabu/portfolio (deterministic budgets, so
/// bit-identity is checkable end to end).
pub fn standard_mix(scale: f64, budget_evals: u64) -> Vec<String> {
    let mut mix = Vec::new();
    for (profile, strategy) in [
        ("expected-ctl", "dma-sr"),
        ("expected-dsp", "dma-sr"),
        ("expected-sci", "dma-chen"),
        ("stress-ctl", "afd-ofu"),
        ("stress-dsp", "dma-ofu"),
    ] {
        mix.push(format!(
            "place profile={profile} scale={scale} strategy={strategy}"
        ));
    }
    mix.push(format!(
        "place profile=expected-ctl scale={scale} strategy=sa seed=11 budget-evals={budget_evals}"
    ));
    mix.push(format!(
        "place profile=expected-dsp scale={scale} strategy=tabu seed=12 budget-evals={budget_evals}"
    ));
    mix.push(format!(
        "place profile=stress-ctl scale={scale} strategy=portfolio seed=13 budget-evals={budget_evals}"
    ));
    mix
}

/// Parses a `place` request line into its [`PlaceRequest`].
fn place_request(line: &str) -> Result<PlaceRequest, String> {
    match parse_request(line).map_err(|e| format!("`{line}`: {e}"))? {
        Request::Place(p) => Ok(*p),
        other => Err(format!("`{line}` is not a place request ({other:?})")),
    }
}

/// Runs the three phases against `config.addr` with the given query mix.
///
/// # Errors
///
/// Connection failures, reference-solve failures, or a malformed mix.
pub fn run(config: &LoadgenConfig, mix: &[String]) -> Result<LoadReport, String> {
    if mix.is_empty() {
        return Err("empty query mix".into());
    }
    // Phase 1: cold in-process references.
    let mut references = Vec::with_capacity(mix.len());
    for line in mix {
        let req = place_request(line)?;
        let (strategy, geom, seq, sol) = req
            .reference_solution(config.default_deadline_ms)
            .map_err(|e| format!("reference for `{line}`: {e}"))?;
        let fields = solution_fields(
            &strategy,
            &Geometry::flat(geom.dbcs, geom.capacity, geom.ports),
            &seq,
            &sol,
        );
        let slice = deterministic_slice(&fields)
            .ok_or_else(|| format!("reference for `{line}` has no payload"))?
            .to_string();
        references.push(slice);
    }

    let requests = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let check = |line: &str, resp: &str| {
        requests.fetch_add(1, Ordering::Relaxed);
        if resp.starts_with("error:") {
            errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = mix.iter().position(|m| m.as_str() == line).unwrap_or(0);
        if deterministic_slice(resp) != Some(references[idx].as_str()) {
            mismatches.fetch_add(1, Ordering::Relaxed);
        }
    };

    // Phase 2: sequential cold + warm passes on one connection.
    let mut client = Client::connect(config.addr)?;
    let pass = |client: &mut Client| -> Result<(u64, f64), String> {
        let mut recomputations = 0u64;
        let mut total_ms = 0.0f64;
        for line in mix {
            let started = Instant::now();
            let resp = client.roundtrip(line)?;
            total_ms += started.elapsed().as_secs_f64() * 1e3;
            check(line, &resp);
            recomputations += json::find_u64(&resp, "dbc_recomputations").unwrap_or(0);
        }
        Ok((recomputations, total_ms))
    };
    let (cold_recomputations, cold_mix_ms) = pass(&mut client)?;
    let (warm_recomputations, warm_mix_ms) = pass(&mut client)?;

    // Phase 3: concurrent replay.
    let mut client_ms = Vec::new();
    let mut server_ms = Vec::new();
    std::thread::scope(|scope| -> Result<(), String> {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|offset| {
                let check = &check;
                scope.spawn(move || -> Result<(Vec<f64>, Vec<f64>), String> {
                    let mut client = Client::connect(config.addr)?;
                    let mut lat = Vec::new();
                    let mut srv = Vec::new();
                    for round in 0..config.rounds.max(1) {
                        // Stagger start offsets so clients collide on
                        // different sessions each round.
                        for i in 0..mix.len() {
                            let line = &mix[(i + offset + round) % mix.len()];
                            let started = Instant::now();
                            let resp = client.roundtrip(line)?;
                            lat.push(started.elapsed().as_secs_f64() * 1e3);
                            check(line, &resp);
                            if let Some(ms) = json::find_f64(&resp, "elapsed_ms") {
                                srv.push(ms);
                            }
                        }
                    }
                    Ok((lat, srv))
                })
            })
            .collect();
        for h in handles {
            let (lat, srv) = h.join().map_err(|_| "load client panicked".to_string())??;
            client_ms.extend(lat);
            server_ms.extend(srv);
        }
        Ok(())
    })?;

    // Final stats snapshot from the daemon.
    let stats = client.roundtrip("stats")?;
    let rate = |hits: &str, misses: &str| {
        let h = json::find_u64(&stats, hits).unwrap_or(0) as f64;
        let m = json::find_u64(&stats, misses).unwrap_or(0) as f64;
        if h + m > 0.0 {
            h / (h + m)
        } else {
            0.0
        }
    };

    let mismatches = mismatches.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    Ok(LoadReport {
        queries: mix.len(),
        requests: requests.load(Ordering::Relaxed),
        identical: mismatches == 0 && errors == 0,
        mismatches,
        errors,
        client_ms: Percentiles::of(&mut client_ms),
        server_ms: Percentiles::of(&mut server_ms),
        cold_recomputations,
        warm_recomputations,
        warm_cache_win: warm_recomputations < cold_recomputations,
        cold_mix_ms,
        warm_mix_ms,
        trace_hit_rate: rate("trace_hits", "trace_misses"),
        session_hit_rate: rate("session_hits", "session_misses"),
        deadline_ms: config.default_deadline_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&mut xs);
        assert_eq!((p.p50, p.p95, p.p99, p.max), (50.0, 95.0, 99.0, 100.0));
        let mut one = vec![7.0];
        let p = Percentiles::of(&mut one);
        assert_eq!((p.p50, p.p99), (7.0, 7.0));
    }

    #[test]
    fn standard_mix_parses_and_materializes() {
        for line in standard_mix(0.05, 200) {
            let req = place_request(&line).unwrap();
            req.materialize()
                .unwrap_or_else(|e| panic!("`{line}`: {e}"));
        }
    }

    /// End-to-end smoke: a tiny mix against a live daemon must come back
    /// bit-identical with a measured warm-cache win.
    #[test]
    fn tiny_load_run_is_identical_and_warms_up() {
        let server = Server::bind(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.spawn().unwrap();
        let config = LoadgenConfig {
            addr: handle.addr(),
            clients: 3,
            rounds: 2,
            default_deadline_ms: 10_000,
        };
        let mix = vec![
            "place profile=expected-ctl scale=0.05 strategy=dma-sr".to_string(),
            "place profile=expected-ctl scale=0.05 strategy=sa seed=5 budget-evals=150".to_string(),
            "place profile=stress-ctl scale=0.05 strategy=tabu seed=6 budget-evals=150".to_string(),
        ];
        let report = run(&config, &mix).unwrap();
        assert!(
            report.identical,
            "mismatches={} errors={}",
            report.mismatches, report.errors
        );
        // 2 sequential passes + 3 clients × 2 rounds × 3 queries.
        assert_eq!(report.requests, (2 * 3 + 3 * 2 * 3) as u64);
        assert!(report.warm_cache_win, "{report:?}");
        assert!(report.session_hit_rate > 0.5, "{report:?}");
        handle.shutdown();
    }
}
