//! A minimal JSON validator and field scanner — no external deps.
//!
//! [`validate`] is a strict recursive-descent pass (objects, arrays,
//! strings, numbers, booleans, null) used by round-trip tests on every
//! emitter in the workspace: the `--json` and serve outputs must be
//! *valid* JSON, not just JSON-looking text. The `find_*` scanners pull
//! single scalar fields out of a known-schema response line (the load
//! generator reads `total_shifts`, `elapsed_ms`, `dbc_recomputations`, …)
//! without materializing a DOM.

/// Validates that `s` is one complete JSON value with no trailing data.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, i))
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        other => Err(format!("unexpected {other:?} at byte {i}")),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'{')?;
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        expect(b, i, b':')?;
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("bad object separator {other:?} at {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'[')?;
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("bad array separator {other:?} at {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => *i += 1, // skip the escaped byte
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    while let Some(&c) = b.get(*i) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

/// The raw text of the first `"key":` scalar value in `s` (known-schema
/// scanning — `key` must not occur inside string values before the wanted
/// field).
fn find_raw<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = s.find(&needle)? + needle.len();
    let rest = &s[at..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest.as_bytes().first() == Some(&b'"') {
                i > 0 && c == '"' && rest.as_bytes()[i - 1] != b'\\'
            } else {
                matches!(c, ',' | '}' | ']')
            }
        })
        .map(|(i, _)| i)?;
    if rest.as_bytes().first() == Some(&b'"') {
        Some(&rest[1..end])
    } else {
        Some(&rest[..end])
    }
}

/// First `"key": <integer>` in `s`.
pub fn find_u64(s: &str, key: &str) -> Option<u64> {
    find_raw(s, key)?.trim().parse().ok()
}

/// First `"key": <number>` in `s`.
pub fn find_f64(s: &str, key: &str) -> Option<f64> {
    find_raw(s, key)?.trim().parse().ok()
}

/// First `"key": true|false` in `s`.
pub fn find_bool(s: &str, key: &str) -> Option<bool> {
    find_raw(s, key)?.trim().parse().ok()
}

/// First `"key": "<string>"` in `s` (raw, escapes not decoded).
pub fn find_str<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    find_raw(s, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_and_rejects() {
        validate("{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\\"y\"},\"d\":null,\"e\":true}").unwrap();
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,2,]").is_err());
        assert!(validate("{\"a\":1} trailing").is_err());
        assert!(validate("\"open").is_err());
    }

    #[test]
    fn scanners_pull_scalars() {
        let s = "{\"ok\":true,\"n\":42,\"f\":1.5,\"s\":\"hi\",\"nested\":{\"n\":7}}";
        assert_eq!(find_u64(s, "n"), Some(42));
        assert_eq!(find_f64(s, "f"), Some(1.5));
        assert_eq!(find_bool(s, "ok"), Some(true));
        assert_eq!(find_str(s, "s"), Some("hi"));
        assert_eq!(find_u64(s, "missing"), None);
    }
}
