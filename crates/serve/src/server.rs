//! The daemon: a TCP accept loop over the line protocol, one thread per
//! connection, all solves on one shared [`WorkerPool`] through the
//! [`SessionCache`].
//!
//! Fault containment is per-line: a malformed request, an unparseable
//! trace, or an unsolvable query gets a single `error: …` response on its
//! own connection and nothing else — the connection stays open, other
//! connections never notice, and the daemon keeps serving (pinned by the
//! integration tests). Admission control bounds concurrent solves: beyond
//! `max_inflight` in-flight `place` requests, new ones are rejected
//! immediately with `error: overloaded …` instead of queueing into
//! deadline misses.

use crate::cache::{GeometryKey, SessionCache};
use crate::fingerprint::Fingerprint;
use crate::protocol::{parse_request, PlaceRequest, Request, RequestError};
use crate::report::{solution_fields, Geometry};
use rtm_placement::WorkerPool;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration. `Default` is what `rtm serve` starts with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Global worker-pool size (`0` = auto-detect).
    pub threads: usize,
    /// Maximum concurrent `place` requests before admission control
    /// rejects with `error: overloaded`.
    pub max_inflight: usize,
    /// Trace-entry bound of the cross-request cache (LRU beyond it).
    pub max_cached_traces: usize,
    /// Wall-clock deadline applied to every search-strategy request that
    /// doesn't carry its own `deadline-ms`.
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            max_inflight: 32,
            max_cached_traces: 64,
            default_deadline_ms: 10_000,
        }
    }
}

/// Monotonic request counters, reported by `stats`.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
}

/// A bound, not-yet-running daemon. [`run`](Server::run) serves on the
/// calling thread; [`spawn`](Server::spawn) serves on a background thread
/// and returns a [`ServerHandle`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    cache: Arc<SessionCache>,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    counters: Arc<Counters>,
}

/// Decrements the in-flight gauge even on the error paths out of a
/// `place` handler.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Server {
    /// Binds the listener and builds the shared cache + pool.
    ///
    /// # Errors
    ///
    /// I/O errors from binding `config.addr`.
    pub fn bind(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let pool = Arc::new(WorkerPool::new(config.threads));
        let cache = Arc::new(SessionCache::new(pool, config.max_cached_traces));
        Ok(Self {
            listener,
            config,
            cache,
            shutdown: Arc::new(AtomicBool::new(false)),
            inflight: Arc::new(AtomicUsize::new(0)),
            counters: Arc::new(Counters::default()),
        })
    }

    /// The actually-bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The cross-request cache (shared with every connection thread).
    pub fn cache(&self) -> Arc<SessionCache> {
        Arc::clone(&self.cache)
    }

    /// Serves until a `shutdown` request arrives. Each connection gets its
    /// own thread; panics and errors in one connection never reach
    /// another.
    pub fn run(self) {
        let mut workers = Vec::new();
        while !self.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn = Connection {
                        cache: Arc::clone(&self.cache),
                        config: self.config.clone(),
                        shutdown: Arc::clone(&self.shutdown),
                        inflight: Arc::clone(&self.inflight),
                        counters: Arc::clone(&self.counters),
                    };
                    workers.push(std::thread::spawn(move || conn.serve(stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let cache = Arc::clone(&self.cache);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            cache,
            thread: Some(thread),
        })
    }
}

/// A handle to a daemon running on a background thread (tests and the
/// load generator).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    cache: Arc<SessionCache>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's cross-request cache (fault injection and assertions).
    pub fn cache(&self) -> Arc<SessionCache> {
        Arc::clone(&self.cache)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-connection state: shared server internals plus the socket loop.
struct Connection {
    cache: Arc<SessionCache>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    inflight: Arc<AtomicUsize>,
    counters: Arc<Counters>,
}

impl Connection {
    fn serve(&self, stream: TcpStream) {
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        {
            return;
        }
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let (response, stop) = self.handle_line(line.trim_end_matches(['\r', '\n']));
                    if writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                        || stop
                    {
                        break;
                    }
                    line.clear();
                }
                // Idle poll: keep any partial line and re-check shutdown.
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }

    /// One request line → one response line. Never panics the connection:
    /// every failure becomes an `error: …` response.
    fn handle_line(&self, line: &str) -> (String, bool) {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match parse_request(line) {
            Ok(Request::Ping) => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                ("{\"ok\":true,\"pong\":true}".to_string(), false)
            }
            Ok(Request::Stats) => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                (self.stats_json(), false)
            }
            Ok(Request::Shutdown) => {
                self.counters.ok.fetch_add(1, Ordering::Relaxed);
                self.shutdown.store(true, Ordering::Release);
                ("{\"ok\":true,\"shutdown\":true}".to_string(), true)
            }
            Ok(Request::Place(req)) => match self.handle_place(&req) {
                Ok(json) => {
                    self.counters.ok.fetch_add(1, Ordering::Relaxed);
                    (json, false)
                }
                Err(e) => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    (format!("error: {e}"), false)
                }
            },
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                (format!("error: {e}"), false)
            }
        }
    }

    fn handle_place(&self, req: &PlaceRequest) -> Result<String, RequestError> {
        // Admission control: reject instead of queueing once the solve
        // concurrency bound is reached.
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.config.max_inflight).then_some(n + 1)
            });
        if admitted.is_err() {
            self.counters.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(RequestError::Malformed(format!(
                "overloaded: {} requests in flight (limit {}); retry later",
                self.inflight.load(Ordering::Acquire),
                self.config.max_inflight
            )));
        }
        let _guard = InflightGuard(Arc::clone(&self.inflight));

        let strategy = req.resolve_strategy(self.config.default_deadline_ms)?;
        let text = req.canonical_text();
        let (entry, trace_hit) = self.cache.get_or_parse(&text, || req.materialize())?;
        let seq = entry.seq();
        let geom = req.geometry(&seq)?;
        let (session, session_hit) = self.cache.session(&entry, geom);
        let deadline_ms = req
            .budget(self.config.default_deadline_ms)
            .deadline()
            .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let started = Instant::now();
        let solution = session.solve(&strategy)?;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        Ok(self.place_json(
            &text,
            geom,
            trace_hit,
            session_hit,
            &strategy,
            &seq,
            &solution,
            session.solves(),
            deadline_ms,
            elapsed_ms,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn place_json(
        &self,
        text: &str,
        geom: GeometryKey,
        trace_hit: bool,
        session_hit: bool,
        strategy: &rtm_placement::Strategy,
        seq: &rtm_trace::AccessSequence,
        solution: &rtm_placement::Solution,
        session_solves: u64,
        deadline_ms: u64,
        elapsed_ms: f64,
    ) -> String {
        let fields = solution_fields(
            strategy,
            &Geometry::flat(geom.dbcs, geom.capacity, geom.ports),
            seq,
            solution,
        );
        let hit = |b: bool| if b { "hit" } else { "miss" };
        format!(
            "{{\"ok\":true,\"served\":{{\"trace_cache\":\"{}\",\
             \"session_cache\":\"{}\",\"fingerprint\":\"{}\",\
             \"session_solves\":{},\"deadline_ms\":{},\
             \"elapsed_ms\":{:.3},\"inflight\":{}}},{}}}",
            hit(trace_hit),
            hit(session_hit),
            Fingerprint::of_text(text),
            session_solves,
            deadline_ms,
            elapsed_ms,
            self.inflight.load(Ordering::Acquire),
            fields
        )
    }

    fn stats_json(&self) -> String {
        let c = self.cache.stats();
        format!(
            "{{\"ok\":true,\"stats\":{{\"requests\":{},\"responses_ok\":{},\
             \"responses_error\":{},\"overloaded\":{},\"inflight\":{},\
             \"max_inflight\":{},\"cache\":{{\"trace_hits\":{},\"trace_misses\":{},\
             \"session_hits\":{},\"session_misses\":{},\"evictions\":{},\
             \"collisions_rejected\":{},\"cached_traces\":{},\"cached_sessions\":{}}}}}}}",
            self.counters.requests.load(Ordering::Relaxed),
            self.counters.ok.load(Ordering::Relaxed),
            self.counters.errors.load(Ordering::Relaxed),
            self.counters.overloaded.load(Ordering::Relaxed),
            self.inflight.load(Ordering::Acquire),
            self.config.max_inflight,
            c.trace_hits,
            c.trace_misses,
            c.session_hits,
            c.session_misses,
            c.evictions,
            c.collisions_rejected,
            c.cached_traces,
            c.cached_sessions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn start() -> (ServerHandle, TcpStream) {
        let server = Server::bind(ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.spawn().unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        (handle, stream)
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp.trim_end().to_string()
    }

    #[test]
    fn ping_stats_and_shutdown_respond_with_valid_json() {
        let (handle, mut stream) = start();
        let pong = roundtrip(&mut stream, "ping");
        json::validate(&pong).unwrap();
        assert_eq!(json::find_bool(&pong, "pong"), Some(true));
        let stats = roundtrip(&mut stream, "stats");
        json::validate(&stats).unwrap();
        // The stats request counts itself: ping + stats.
        assert_eq!(json::find_u64(&stats, "requests"), Some(2));
        let bye = roundtrip(&mut stream, "shutdown");
        assert_eq!(json::find_bool(&bye, "shutdown"), Some(true));
        handle.shutdown();
    }

    #[test]
    fn place_twice_reuses_the_warm_session() {
        let (handle, mut stream) = start();
        let q = "place strategy=dma-sr dbcs=2 :: a b a b c a c a";
        let cold = roundtrip(&mut stream, q);
        let warm = roundtrip(&mut stream, q);
        json::validate(&cold).unwrap();
        json::validate(&warm).unwrap();
        assert_eq!(json::find_str(&cold, "session_cache"), Some("miss"));
        assert_eq!(json::find_str(&warm, "session_cache"), Some("hit"));
        assert_eq!(json::find_u64(&cold, "session_solves"), Some(1));
        assert_eq!(json::find_u64(&warm, "session_solves"), Some(2));
        // The deterministic payload is bit-identical across warm and cold.
        assert_eq!(
            crate::report::deterministic_slice(&cold).unwrap(),
            crate::report::deterministic_slice(&warm).unwrap()
        );
        handle.shutdown();
    }

    #[test]
    fn bad_requests_get_one_error_line_and_the_daemon_survives() {
        let (handle, mut stream) = start();
        // Trace error with the position of the bad token (line 2 via \n).
        let resp = roundtrip(&mut stream, "place dbcs=2 :: a b\\na :q b");
        assert!(resp.starts_with("error: "), "{resp}");
        assert!(resp.contains("line 2"), "{resp}");
        assert!(resp.contains("column 3"), "{resp}");
        // Unknown command, same connection, still alive.
        let resp = roundtrip(&mut stream, "frobnicate");
        assert!(resp.starts_with("error: "), "{resp}");
        // And a good request still works afterwards.
        let ok = roundtrip(&mut stream, "place dbcs=2 :: a b a b");
        assert_eq!(json::find_bool(&ok, "ok"), Some(true));
        handle.shutdown();
    }

    #[test]
    fn admission_control_rejects_beyond_max_inflight() {
        // max_inflight = 0 makes every place an overload rejection while
        // ping/stats still pass — the bound gates solves, not the socket.
        let server = Server::bind(ServeConfig {
            threads: 1,
            max_inflight: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&mut stream, "place dbcs=2 :: a b a b");
        assert!(resp.starts_with("error: overloaded"), "{resp}");
        let pong = roundtrip(&mut stream, "ping");
        assert_eq!(json::find_bool(&pong, "pong"), Some(true));
        let stats = roundtrip(&mut stream, "stats");
        assert_eq!(json::find_u64(&stats, "overloaded"), Some(1));
        handle.shutdown();
    }
}
