//! The one JSON emitter for solved placements.
//!
//! The CLI's `--json` output and the serve protocol's `place` responses
//! share this module, so string escaping and the solution schema cannot
//! drift between the two (they used to be two hand-rolled formatters; a
//! field added to one silently missed the other). Each front end wraps
//! [`solution_fields`] in its own envelope — `{"command":"place",…}` for
//! the CLI, `{"ok":true,"served":{…},…}` for the daemon — but the
//! placement payload itself is byte-identical.
//!
//! [`deterministic_slice`] exposes the machine-independent prefix of that
//! payload (strategy, geometry, shift totals, the full per-DBC layout —
//! everything up to the wall-clock telemetry), which is what the
//! bit-identity checks in the server tests and the load generator compare.

use rtm_placement::{Solution, Strategy};
use rtm_trace::AccessSequence;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The geometry block of a report: per-subarray shape plus ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Subarray count (`1` for flat problems).
    pub subarrays: usize,
    /// DBCs per subarray.
    pub dbcs_per_subarray: usize,
    /// Locations per DBC (track length).
    pub locations_per_dbc: usize,
    /// Access ports per track.
    pub ports_per_track: usize,
}

impl Geometry {
    /// A flat (single-subarray) geometry.
    pub fn flat(dbcs: usize, capacity: usize, ports: usize) -> Self {
        Self {
            subarrays: 1,
            dbcs_per_subarray: dbcs,
            locations_per_dbc: capacity,
            ports_per_track: ports,
        }
    }

    /// Global DBC count.
    pub fn total_dbcs(&self) -> usize {
        self.subarrays * self.dbcs_per_subarray
    }
}

/// The stable machine-readable body shared by the CLI and the daemon:
/// `"strategy":… ,"geometry":{…},"total_shifts":…,"per_subarray_shifts":[…],
/// "dbcs":[…],"search":{…}` — comma-separated fields without an enclosing
/// object, so callers can splice them into their own envelope.
pub fn solution_fields(
    strategy: &Strategy,
    geom: &Geometry,
    seq: &AccessSequence,
    sol: &Solution,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "\"strategy\":\"{}\",\"geometry\":{{\"subarrays\":{},\
         \"dbcs_per_subarray\":{},\"locations_per_dbc\":{},\"ports_per_track\":{},\
         \"total_dbcs\":{}}},\"total_shifts\":{}",
        json_escape(strategy.name()),
        geom.subarrays,
        geom.dbcs_per_subarray,
        geom.locations_per_dbc,
        geom.ports_per_track,
        geom.total_dbcs(),
        sol.shifts
    );
    let per_subarray = sol.per_subarray_shifts(geom.dbcs_per_subarray);
    let _ = write!(
        out,
        ",\"per_subarray_shifts\":[{}]",
        per_subarray
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    out.push_str(",\"dbcs\":[");
    for (d, list) in sol.placement.dbc_lists().iter().enumerate() {
        if d > 0 {
            out.push(',');
        }
        let vars: Vec<String> = list
            .iter()
            .map(|&v| format!("\"{}\"", json_escape(seq.vars().name(v))))
            .collect();
        let _ = write!(
            out,
            "{{\"subarray\":{},\"dbc\":{},\"shifts\":{},\"vars\":[{}]}}",
            d / geom.dbcs_per_subarray,
            d % geom.dbcs_per_subarray,
            sol.per_dbc_shifts[d],
            vars.join(",")
        );
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"search\":{{\"evals_consumed\":{},\"time_to_best_ms\":{:.3},\
         \"elapsed_ms\":{:.3},\"stop\":\"{}\"",
        sol.evals_consumed,
        sol.time_to_best.as_secs_f64() * 1e3,
        sol.elapsed.as_secs_f64() * 1e3,
        sol.stop.name()
    );
    let es = &sol.engine_stats;
    let _ = write!(
        out,
        ",\"cache\":{{\"dbc_recomputations\":{},\"dbc_cache_hits\":{},\
         \"subseq_cache_hits\":{},\"dbc_inherited\":{},\"memo_merged\":{},\
         \"memo_contended\":{},\"subseq_contended\":{}}}",
        es.dbc_recomputations,
        es.dbc_cache_hits,
        es.subseq_cache_hits,
        es.dbc_inherited,
        es.memo_merged,
        es.memo_contended,
        es.subseq_contended
    );
    if !sol.lanes.is_empty() {
        out.push_str(",\"lanes\":[");
        for (i, lane) in sol.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"status\":\"{}\",\"cost\":{},\"evals\":{}}}",
                json_escape(lane.name),
                lane.status.name(),
                lane.cost.map_or("null".to_string(), |c| c.to_string()),
                lane.evals
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// The machine-independent slice of a report containing
/// [`solution_fields`]: from `"strategy"` up to (excluding) `"search"` —
/// i.e. strategy, geometry, `total_shifts`, `per_subarray_shifts` and the
/// complete per-DBC layout, none of which may differ between a warm serve
/// response and a cold single-shot solve of the same query. Returns `None`
/// when the text carries no such payload (e.g. an `error:` line).
pub fn deterministic_slice(json: &str) -> Option<&str> {
    let start = json.find("\"strategy\":")?;
    let end = json[start..].find(",\"search\":")?;
    Some(&json[start..start + end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use rtm_placement::{PlacementProblem, Strategy};
    use rtm_trace::{AccessKind, SequenceBuilder};

    /// Round-trip satellite: the emitted fields wrapped in any envelope
    /// must parse as valid JSON — including variable names that need every
    /// escape class (quote, backslash, control characters).
    #[test]
    fn emitted_fields_round_trip_through_the_parser() {
        let mut b = SequenceBuilder::new();
        for name in ["plain", "qu\"ote", "back\\slash", "tab\there", "nl\nname"] {
            b.var(name);
        }
        for name in [
            "plain",
            "qu\"ote",
            "back\\slash",
            "tab\there",
            "nl\nname",
            "plain",
        ] {
            b.access_named(name, AccessKind::Read);
        }
        let seq = b.finish();
        let p = PlacementProblem::new(seq.clone(), 2, 16);
        let sol = p.solve(&Strategy::DmaSr).unwrap();
        let fields = solution_fields(
            &Strategy::DmaSr,
            &Geometry::flat(p.dbcs(), p.capacity(), 1),
            &seq,
            &sol,
        );
        let wrapped = format!("{{{fields}}}");
        json::validate(&wrapped).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{wrapped}"));
        assert!(wrapped.contains("qu\\\"ote"));
        assert!(wrapped.contains("back\\\\slash"));
        assert!(wrapped.contains("nl\\nname"));
    }

    #[test]
    fn deterministic_slice_drops_only_the_timing_tail() {
        let seq = rtm_trace::AccessSequence::parse("a b a b c c a").unwrap();
        let p = PlacementProblem::new(seq.clone(), 2, 8);
        let sol = p.solve(&Strategy::DmaSr).unwrap();
        let fields = solution_fields(&Strategy::DmaSr, &Geometry::flat(2, 8, 1), &seq, &sol);
        let slice = deterministic_slice(&fields).unwrap();
        assert!(slice.starts_with("\"strategy\":\"DMA-SR\""));
        assert!(slice.contains("\"total_shifts\""));
        assert!(slice.contains("\"dbcs\":["));
        assert!(!slice.contains("elapsed_ms"));
        assert!(deterministic_slice("error: nope").is_none());
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("say \"hi\"\r\n"), "say \\\"hi\\\"\\r\\n");
    }
}
