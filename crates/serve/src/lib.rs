//! Placement-as-a-service: a long-running daemon over the placement
//! engine.
//!
//! The CLI's one-shot model pays the full engine construction cost —
//! trace parsing, access-index building, cache allocation — on every
//! invocation, and throws the warmed memoization away at exit. This crate
//! keeps [`Session`](rtm_placement::Session)s alive across requests:
//!
//! * [`protocol`] — the line protocol (`ping` / `stats` / `shutdown` /
//!   `place …`), with option names and defaults mirroring the CLI.
//! * [`fingerprint`] — structural trace fingerprints (length + token
//!   count + 256-bit digest) for the cross-request cache; never trusted
//!   as identity.
//! * [`cache`] — the two-level [`SessionCache`](cache::SessionCache):
//!   fingerprint → exact-text-verified trace entry → per-geometry
//!   [`Session`](rtm_placement::Session), all sharing one global
//!   [`WorkerPool`](rtm_placement::WorkerPool).
//! * [`server`] — the TCP accept loop, admission control, per-request
//!   deadlines, and fault containment (a bad request gets one `error:`
//!   line; the daemon survives).
//! * [`loadgen`] — a client that replays mixed tier-workload request
//!   streams against a server and measures latency percentiles, cache hit
//!   rates, and bit-identity against cold single-shot solves.
//! * [`report`] / [`json`] — the JSON emitter shared with the CLI's
//!   `--json` output, and the dependency-free validator/scanner used to
//!   check it.
//!
//! The serving contract is the repo-wide determinism invariant extended
//! across requests: a warm, concurrent answer is bit-identical to a cold
//! single-shot solve of the same query whenever the budget is
//! deterministic (deadlines are a liveness backstop, DESIGN.md §11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod fingerprint;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod report;
pub mod server;
