//! Fault injection against *live* cached sessions (`--features faults`):
//! the PR-7 harness (lane panics, stalls, cache poisoning) pointed at the
//! daemon's warm engines instead of a throwaway one. The serving contract
//! under fire: results stay bit-identical, the daemon stays up.

#![cfg(feature = "faults")]

use rtm_placement::search::faults::{Fault, FaultPlan};
use rtm_placement::{Budget, LaneStatus, Portfolio, PortfolioConfig, Strategy};
use rtm_serve::cache::GeometryKey;
use rtm_serve::report::deterministic_slice;
use rtm_serve::server::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp.trim_end().to_string()
}

/// Poisoning every warm session's caches between two identical requests
/// must be invisible in the responses: the engines recover shard by shard
/// and the deterministic payloads stay bit-identical.
#[test]
fn poisoned_live_sessions_recover_with_identical_answers() {
    let handle = Server::bind(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let queries = [
        "place strategy=sa seed=9 budget-evals=300 dbcs=2 :: a b a b c a c a d d a d",
        "place strategy=dma-sr dbcs=2 :: a b a b c a c a d d a d",
        "place profile=expected-ctl scale=0.05 strategy=tabu seed=4 budget-evals=300",
    ];
    let before: Vec<String> = queries.iter().map(|q| roundtrip(&mut stream, q)).collect();
    // Sabotage every warm engine's caches while the daemon is live.
    handle.cache().poison_all_sessions();
    let after: Vec<String> = queries.iter().map(|q| roundtrip(&mut stream, q)).collect();
    for ((q, b), a) in queries.iter().zip(&before).zip(&after) {
        assert!(b.starts_with("{\"ok\":true"), "{q}: {b}");
        assert_eq!(
            deterministic_slice(b).unwrap(),
            deterministic_slice(a).unwrap(),
            "poisoning changed the answer for `{q}`"
        );
    }
    // The daemon is still healthy.
    assert!(roundtrip(&mut stream, "ping").contains("\"pong\":true"));
    handle.shutdown();
}

/// The portfolio fault harness run directly against a *warm cached*
/// engine: panicking lanes are contained at the lane boundary, the
/// surviving lanes win, and the session keeps serving identical answers
/// afterwards — a crashing search inside the daemon can't take the
/// session (or the process) down.
#[test]
fn lane_panics_on_a_warm_cached_engine_are_contained() {
    let handle = Server::bind(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let query = "place strategy=sa seed=7 budget-evals=200 dbcs=2 :: a b a b c a c a d d a d";
    let baseline = roundtrip(&mut stream, query);

    // Reach the very session the daemon just used and race a faulted
    // portfolio on its warm engine.
    let cache = handle.cache();
    let (entry, hit) = cache
        .get_or_parse("a b a b c a c a d d a d", || {
            rtm_trace::AccessSequence::parse("a b a b c a c a d d a d")
        })
        .unwrap();
    assert!(hit, "the daemon should have cached this trace");
    let key = GeometryKey {
        dbcs: 2,
        capacity: 512,
        ports: 1,
        shards: 0,
    };
    let (session, session_hit) = cache.session(&entry, key);
    assert!(session_hit, "the daemon should have warmed this session");
    let cfg = PortfolioConfig::new(Budget::evals(600)).with_seed(3);
    let plan = FaultPlan::new()
        .inject(2, Fault::PanicAfterEvals(30))
        .inject(3, Fault::PanicAfterEvals(20));
    let out = Portfolio::new(cfg)
        .with_faults(plan)
        .run_with_engine(
            session.engine(),
            key.dbcs,
            key.capacity,
            session.heuristic_seeds(),
        )
        .unwrap();
    assert!(
        out.lanes[2..]
            .iter()
            .all(|l| matches!(l.status, LaneStatus::Panicked(_))),
        "{:?}",
        out.lanes
    );
    assert!(
        out.lanes[..2]
            .iter()
            .all(|l| l.status == LaneStatus::Completed),
        "{:?}",
        out.lanes
    );

    // The mauled session still answers the original query identically.
    let after = roundtrip(&mut stream, query);
    assert_eq!(
        deterministic_slice(&baseline).unwrap(),
        deterministic_slice(&after).unwrap()
    );
    // And a plain re-solve through the session agrees with itself.
    let s1 = session.solve(&Strategy::DmaSr).unwrap();
    let s2 = session.solve(&Strategy::DmaSr).unwrap();
    assert_eq!(s1.placement, s2.placement);
    handle.shutdown();
}
