//! Concurrent-correctness suite for the daemon: N simultaneous mixed
//! requests must be bit-identical to cold single-shot solves, malformed
//! requests must get exactly one structured `error:` line without
//! disturbing anyone else, and the cache identity must hold under
//! adversarial inputs.

use rtm_serve::loadgen::{self, LoadgenConfig};
use rtm_serve::protocol::{parse_request, Request};
use rtm_serve::report::deterministic_slice;
use rtm_serve::server::{ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn start(threads: usize) -> ServerHandle {
    Server::bind(ServeConfig {
        threads,
        ..ServeConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap()
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp.trim_end().to_string()
}

/// The headline acceptance check: a mixed-tier, mixed-strategy stream
/// served concurrently from warm cached sessions answers bit-identically
/// to fresh in-process single-shot solves (deterministic budgets).
#[test]
fn concurrent_mixed_requests_are_bit_identical_to_single_shot() {
    let handle = start(0);
    let mut mix = loadgen::standard_mix(0.05, 200);
    // Inline traces ride along with the generated profiles.
    mix.push("place strategy=dma-sr dbcs=2 :: a b a b c a c a b b".to_string());
    mix.push("place strategy=sa seed=3 budget-evals=200 dbcs=2 :: x y z x y z x x".to_string());
    let report = loadgen::run(
        &LoadgenConfig {
            addr: handle.addr(),
            clients: 4,
            rounds: 2,
            default_deadline_ms: 10_000,
        },
        &mix,
    )
    .unwrap();
    assert!(
        report.identical,
        "mismatches={} errors={}",
        report.mismatches, report.errors
    );
    assert_eq!(report.errors, 0);
    assert!(report.warm_cache_win, "{report:?}");
    assert!(report.trace_hit_rate > 0.5, "{report:?}");
    handle.shutdown();
}

/// A malformed request on one connection gets a single `error:` line with
/// the parse position, while a concurrent well-formed stream on another
/// connection is entirely unaffected.
#[test]
fn malformed_requests_never_disturb_other_connections() {
    let handle = start(2);
    let addr = handle.addr();
    let good_line = "place strategy=dma-sr dbcs=2 :: m n m n o m o m";
    // Reference payload for the good query.
    let reference = {
        let Request::Place(req) = parse_request(good_line).unwrap() else {
            unreachable!()
        };
        let (strategy, geom, seq, sol) = req.reference_solution(10_000).unwrap();
        rtm_serve::report::solution_fields(
            &strategy,
            &rtm_serve::report::Geometry::flat(geom.dbcs, geom.capacity, geom.ports),
            &seq,
            &sol,
        )
    };
    let expected = deterministic_slice(&reference).unwrap().to_string();

    std::thread::scope(|scope| {
        let bad = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for _ in 0..8 {
                // Multi-line trace whose third line is malformed.
                let resp = roundtrip(&mut stream, "place dbcs=2 :: a b\\nc d\\n:x e");
                assert!(resp.starts_with("error: "), "{resp}");
                assert!(resp.contains("line 3"), "{resp}");
                assert!(resp.contains("column 1"), "{resp}");
                // Exactly one line: a second command still answers.
                let pong = roundtrip(&mut stream, "ping");
                assert!(pong.contains("\"pong\":true"), "{pong}");
            }
        });
        let good = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for _ in 0..8 {
                let resp = roundtrip(&mut stream, good_line);
                assert_eq!(
                    deterministic_slice(&resp).unwrap(),
                    expected,
                    "good stream perturbed by a malformed neighbor"
                );
            }
        });
        bad.join().unwrap();
        good.join().unwrap();
    });
    handle.shutdown();
}

/// Unsolvable-but-well-formed queries (capacity too small for the
/// variables) are also contained to one `error:` line.
#[test]
fn unsolvable_queries_are_errors_not_crashes() {
    let handle = start(1);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let resp = roundtrip(&mut stream, "place dbcs=1 capacity=2 :: a b c d e a b c");
    assert!(resp.starts_with("error: "), "{resp}");
    // Same connection keeps serving.
    let ok = roundtrip(&mut stream, "place dbcs=2 :: a b a b");
    assert!(ok.starts_with("{\"ok\":true"), "{ok}");
    handle.shutdown();
}

/// Two different traces engineered to share length and token count (the
/// cheap structural prefix of the fingerprint) must never cross-hit: each
/// gets its own session and its own solution.
#[test]
fn structurally_similar_traces_get_distinct_sessions() {
    let handle = start(1);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let a = roundtrip(&mut stream, "place dbcs=2 :: a b a b c c a a");
    let b = roundtrip(&mut stream, "place dbcs=2 :: c c a b a b a a");
    assert!(a.contains("\"trace_cache\":\"miss\""), "{a}");
    assert!(b.contains("\"trace_cache\":\"miss\""), "{b}");
    let fp = |s: &str| {
        let at = s.find("\"fingerprint\":\"").unwrap() + 15;
        s[at..].split('"').next().unwrap().to_string()
    };
    assert_ne!(fp(&a), fp(&b), "distinct traces share a fingerprint");
    // Repeat of each hits its own entry.
    let a2 = roundtrip(&mut stream, "place dbcs=2 :: a b a b c c a a");
    assert!(a2.contains("\"trace_cache\":\"hit\""), "{a2}");
    assert_eq!(
        deterministic_slice(&a).unwrap(),
        deterministic_slice(&a2).unwrap()
    );
    handle.shutdown();
}
