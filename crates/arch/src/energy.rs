use crate::params::{MemoryParams, Ns, Pj};
use std::fmt;
use std::ops::Add;

/// Energy consumed by a simulated run, broken down the way the paper's
/// Fig. 5 reports it: leakage, read/write (access) energy, and shift energy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Static leakage over the run's duration.
    pub leakage: Pj,
    /// Dynamic energy of read and write accesses.
    pub read_write: Pj,
    /// Dynamic energy of shift operations.
    pub shift: Pj,
}

impl EnergyBreakdown {
    /// Creates a breakdown from operation counts and a run duration.
    ///
    /// `reads`/`writes`/`shifts` are operation counts; `duration` is the
    /// total busy time the leakage integrates over.
    pub fn from_counts(
        params: &MemoryParams,
        reads: u64,
        writes: u64,
        shifts: u64,
        duration: Ns,
    ) -> Self {
        Self {
            leakage: params.leakage_power.leak_over(duration),
            read_write: params.read_energy * reads as f64 + params.write_energy * writes as f64,
            shift: params.shift_energy * shifts as f64,
        }
    }

    /// Total energy.
    pub fn total(&self) -> Pj {
        self.leakage + self.read_write + self.shift
    }

    /// Fraction contributed by shifts, in `[0, 1]` (0 for an empty run).
    pub fn shift_fraction(&self) -> f64 {
        let t = self.total().value();
        if t == 0.0 {
            0.0
        } else {
            self.shift.value() / t
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            leakage: self.leakage + rhs.leakage,
            read_write: self.read_write + rhs.read_write,
            shift: self.shift + rhs.shift,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} (leak {:.1}, r/w {:.1}, shift {:.1})",
            self.total(),
            self.leakage,
            self.read_write,
            self.shift
        )
    }
}

/// Latency totals of a simulated run (§IV-C of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyReport {
    /// Time spent in read accesses.
    pub read: Ns,
    /// Time spent in write accesses.
    pub write: Ns,
    /// Time spent shifting.
    pub shift: Ns,
}

impl LatencyReport {
    /// Creates a report from operation counts.
    pub fn from_counts(params: &MemoryParams, reads: u64, writes: u64, shifts: u64) -> Self {
        Self {
            read: params.read_latency * reads as f64,
            write: params.write_latency * writes as f64,
            shift: params.shift_latency * shifts as f64,
        }
    }

    /// Total access latency (reads + writes + shifts, serialized — the
    /// trace-driven model of `rtm-sim`).
    pub fn total(&self) -> Ns {
        self.read + self.write + self.shift
    }

    /// Fraction of the run spent shifting, in `[0, 1]`.
    pub fn shift_fraction(&self) -> f64 {
        let t = self.total().value();
        if t == 0.0 {
            0.0
        } else {
            self.shift.value() / t
        }
    }
}

impl Add for LatencyReport {
    type Output = LatencyReport;
    fn add(self, rhs: LatencyReport) -> LatencyReport {
        LatencyReport {
            read: self.read + rhs.read,
            write: self.write + rhs.write,
            shift: self.shift + rhs.shift,
        }
    }
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} (read {:.1}, write {:.1}, shift {:.1})",
            self.total(),
            self.read,
            self.write,
            self.shift
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1;

    #[test]
    fn energy_from_counts() {
        let p = table1::preset(2).unwrap();
        // 10 reads, 5 writes, 20 shifts, 100 ns busy.
        let e = EnergyBreakdown::from_counts(&p, 10, 5, 20, Ns(100.0));
        assert!((e.read_write.value() - (10.0 * 2.26 + 5.0 * 3.42)).abs() < 1e-9);
        assert!((e.shift.value() - 20.0 * 2.18).abs() < 1e-9);
        assert!((e.leakage.value() - 339.0).abs() < 1e-9);
        assert!(e.total().value() > e.shift.value());
        assert!(e.shift_fraction() > 0.0 && e.shift_fraction() < 1.0);
    }

    #[test]
    fn latency_from_counts() {
        let p = table1::preset(4).unwrap();
        let l = LatencyReport::from_counts(&p, 3, 2, 10);
        assert!((l.read.value() - 3.0 * 0.84).abs() < 1e-9);
        assert!((l.write.value() - 2.0 * 1.14).abs() < 1e-9);
        assert!((l.shift.value() - 10.0 * 0.92).abs() < 1e-9);
        assert!(
            (l.total().value() - (l.read.value() + l.write.value() + l.shift.value())).abs()
                < 1e-12
        );
    }

    #[test]
    fn addition_accumulates() {
        let p = table1::preset(2).unwrap();
        let a = EnergyBreakdown::from_counts(&p, 1, 0, 1, Ns(1.0));
        let b = EnergyBreakdown::from_counts(&p, 0, 1, 2, Ns(2.0));
        let c = a + b;
        assert!((c.total().value() - (a.total().value() + b.total().value())).abs() < 1e-9);
        let la = LatencyReport::from_counts(&p, 1, 0, 1);
        let lb = LatencyReport::from_counts(&p, 0, 1, 0);
        assert!(
            ((la + lb).total().value() - (la.total().value() + lb.total().value())).abs() < 1e-12
        );
    }

    #[test]
    fn empty_run_fractions_are_zero() {
        assert_eq!(EnergyBreakdown::default().shift_fraction(), 0.0);
        assert_eq!(LatencyReport::default().shift_fraction(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let p = table1::preset(2).unwrap();
        let e = EnergyBreakdown::from_counts(&p, 1, 1, 1, Ns(1.0));
        assert!(e.to_string().contains("shift"));
        let l = LatencyReport::from_counts(&p, 1, 1, 1);
        assert!(l.to_string().contains("read"));
    }
}
