//! Racetrack-memory architecture model.
//!
//! This crate is the workspace's substitute for the **DESTINY** circuit
//! simulator used by the DATE 2020 paper: the paper only consumes DESTINY's
//! *outputs* — the per-configuration latency / energy / area numbers of its
//! Table I — so this crate reproduces that table verbatim
//! ([`table1::preset`]) and provides a smooth analytic model
//! ([`ScalingModel`]) fitted to the table for configurations the paper does
//! not tabulate.
//!
//! The second half of the crate models RTM *geometry*: how many Domain Block
//! Clusters (DBCs) a subarray has, how many tracks and domains per DBC, and
//! how many access ports each track carries ([`RtmGeometry`], aliased
//! [`SubarrayGeometry`] in array contexts). An [`ArrayGeometry`] composes
//! multiple identical subarrays — the capacity-aware form the experiments
//! use when a workload exceeds one 4 KiB subarray.
//!
//! # Example
//!
//! ```
//! use rtm_arch::{table1, RtmGeometry};
//!
//! // The paper's 4-DBC configuration of Table I.
//! let params = table1::preset(4).expect("tabulated");
//! assert_eq!(params.domains_per_dbc, 256);
//!
//! let geom = RtmGeometry::paper_4kib(4)?;
//! assert_eq!(geom.capacity_bytes(), 4096);
//! # Ok::<(), rtm_arch::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod energy;
mod error;
mod geometry;
mod params;
mod scaling;
pub mod table1;

pub use array::ArrayGeometry;
pub use energy::{EnergyBreakdown, LatencyReport};
pub use error::ConfigError;
pub use geometry::RtmGeometry;
/// Role-named alias for [`RtmGeometry`]: in an [`ArrayGeometry`] every
/// subarray is one `RtmGeometry` (the paper-faithful 4 KiB Table I unit).
pub type SubarrayGeometry = RtmGeometry;
pub use params::{MemoryParams, Mm2, Mw, Ns, Pj};
pub use scaling::ScalingModel;
