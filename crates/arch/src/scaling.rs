use crate::params::{MemoryParams, Mm2, Mw, Ns, Pj};
use crate::table1;

/// Analytic parameter model fitted to Table I.
///
/// The paper obtains its numbers from the DESTINY circuit simulator for DBC
/// counts 2, 4, 8 and 16. For ablations at other counts (e.g. the 12-DBC
/// series visible in Fig. 4's legend) we interpolate each Table I quantity
/// **log-linearly in the DBC count**: every tabulated quantity is very close
/// to linear in `log2(dbcs)` (leakage and area grow with port count, shift
/// latency/energy shrink with track length), so piecewise log-linear
/// interpolation reproduces the table exactly at the tabulated points and is
/// monotone in between. Outside `[2, 16]` the model extrapolates the nearest
/// segment.
///
/// This substitution is documented in `DESIGN.md` §3.
///
/// # Example
///
/// ```
/// use rtm_arch::ScalingModel;
///
/// let model = ScalingModel::from_table1();
/// // Exact at tabulated points…
/// assert_eq!(model.params(8).shift_latency.value(), 0.86);
/// // …monotone in between.
/// let p12 = model.params(12);
/// assert!(p12.leakage_power.value() > 6.56 && p12.leakage_power.value() < 8.94);
/// ```
#[derive(Debug, Clone)]
pub struct ScalingModel {
    /// Tabulated anchor points, sorted by DBC count.
    anchors: Vec<MemoryParams>,
    /// Total capacity in bits, preserved across configurations.
    capacity_bits: usize,
    /// Tracks per DBC (32 in the paper).
    tracks_per_dbc: usize,
}

impl ScalingModel {
    /// Builds the model from the paper's Table I (4 KiB, 32 tracks/DBC).
    pub fn from_table1() -> Self {
        Self {
            anchors: table1::all().to_vec(),
            capacity_bits: 4096 * 8,
            tracks_per_dbc: 32,
        }
    }

    /// Builds a model from custom anchors.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two anchors are supplied or they are not strictly
    /// increasing in DBC count.
    pub fn from_anchors(
        anchors: Vec<MemoryParams>,
        capacity_bits: usize,
        tracks_per_dbc: usize,
    ) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchor points");
        assert!(
            anchors.windows(2).all(|w| w[0].dbcs < w[1].dbcs),
            "anchors must be strictly increasing in DBC count"
        );
        Self {
            anchors,
            capacity_bits,
            tracks_per_dbc,
        }
    }

    fn interpolate(&self, dbcs: usize, field: impl Fn(&MemoryParams) -> f64) -> f64 {
        let x = (dbcs as f64).log2();
        let seg = self
            .anchors
            .windows(2)
            .find(|w| dbcs <= w[1].dbcs)
            .unwrap_or(&self.anchors[self.anchors.len() - 2..]);
        let (a, b) = (&seg[0], &seg[1]);
        let (xa, xb) = ((a.dbcs as f64).log2(), (b.dbcs as f64).log2());
        let t = (x - xa) / (xb - xa);
        let raw = field(a) + (field(b) - field(a)) * t;
        // Physical floor: extrapolating a shrinking quantity (e.g. shift
        // latency) far past the table would eventually cross zero; clamp to
        // a small fraction of the smallest anchor value so every derived
        // energy/latency stays strictly positive while the extrapolation
        // remains monotone (flat once the floor is reached).
        let floor = self
            .anchors
            .iter()
            .map(&field)
            .fold(f64::INFINITY, f64::min)
            * 1e-3;
        raw.max(floor)
    }

    /// Parameters for an arbitrary DBC count (≥ 1).
    ///
    /// Exact at tabulated anchors; log-linear in between and beyond.
    ///
    /// # Panics
    ///
    /// Panics if `dbcs == 0`.
    pub fn params(&self, dbcs: usize) -> MemoryParams {
        assert!(dbcs > 0, "dbc count must be at least 1");
        if let Some(p) = self.anchors.iter().find(|p| p.dbcs == dbcs) {
            return *p;
        }
        let domains = self.capacity_bits / (dbcs * self.tracks_per_dbc);
        MemoryParams {
            dbcs,
            domains_per_dbc: domains.max(1),
            leakage_power: Mw(self.interpolate(dbcs, |p| p.leakage_power.value())),
            write_energy: Pj(self.interpolate(dbcs, |p| p.write_energy.value())),
            read_energy: Pj(self.interpolate(dbcs, |p| p.read_energy.value())),
            shift_energy: Pj(self.interpolate(dbcs, |p| p.shift_energy.value())),
            read_latency: Ns(self.interpolate(dbcs, |p| p.read_latency.value())),
            write_latency: Ns(self.interpolate(dbcs, |p| p.write_latency.value())),
            shift_latency: Ns(self.interpolate(dbcs, |p| p.shift_latency.value())),
            area: Mm2(self.interpolate(dbcs, |p| p.area.value())),
        }
    }
}

impl Default for ScalingModel {
    fn default() -> Self {
        Self::from_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_anchors() {
        let m = ScalingModel::from_table1();
        for d in table1::TABULATED_DBCS {
            assert_eq!(m.params(d), table1::preset(d).unwrap());
        }
    }

    #[test]
    fn monotone_between_anchors() {
        let m = ScalingModel::from_table1();
        let mut prev_leak = 0.0;
        let mut prev_shift = f64::INFINITY;
        for d in 2..=16 {
            let p = m.params(d);
            assert!(p.leakage_power.value() > prev_leak, "leakage at {d}");
            assert!(p.shift_latency.value() < prev_shift, "shift lat at {d}");
            p.validate().unwrap();
            prev_leak = p.leakage_power.value();
            prev_shift = p.shift_latency.value();
        }
    }

    #[test]
    fn twelve_dbc_config_is_sane() {
        let m = ScalingModel::from_table1();
        let p = m.params(12);
        assert_eq!(p.dbcs, 12);
        // 4 KiB / (12 * 32) = 85.33 -> 85 domains (capacity no longer exactly
        // 4 KiB; acceptable for an ablation point).
        assert_eq!(p.domains_per_dbc, 85);
        assert!(p.area.value() > 0.0226 && p.area.value() < 0.0279);
    }

    #[test]
    fn extrapolates_beyond_table() {
        let m = ScalingModel::from_table1();
        let p32 = m.params(32);
        assert!(p32.leakage_power.value() > 8.94);
        assert!(p32.shift_latency.value() < 0.78);
        assert!(p32.shift_latency.value() > 0.0);
    }

    #[test]
    fn extrapolation_is_monotone_outside_the_table() {
        // Below 2 and beyond 16 the nearest segment extrapolates; each
        // quantity must keep its direction (non-strictly, because of the
        // positivity floor) across the whole out-of-range sweep.
        let m = ScalingModel::from_table1();
        let sweep: Vec<usize> = vec![1, 2, 16, 24, 32, 64, 128, 256, 1024];
        let mut prev = m.params(sweep[0]);
        for &d in &sweep[1..] {
            let p = m.params(d);
            assert!(
                p.leakage_power.value() >= prev.leakage_power.value(),
                "leakage at {d}"
            );
            assert!(p.area.value() >= prev.area.value(), "area at {d}");
            assert!(
                p.shift_latency.value() <= prev.shift_latency.value(),
                "shift lat at {d}"
            );
            assert!(
                p.shift_energy.value() <= prev.shift_energy.value(),
                "shift energy at {d}"
            );
            prev = p;
        }
    }

    #[test]
    fn extrapolation_is_exact_at_tabulated_points() {
        // The clamp must not disturb the anchors themselves (already pinned
        // by `exact_at_anchors`, restated here against the out-of-range
        // code path: querying far outside and then an anchor again).
        let m = ScalingModel::from_table1();
        let _ = m.params(1024);
        for d in table1::TABULATED_DBCS {
            assert_eq!(m.params(d), table1::preset(d).unwrap());
        }
    }

    #[test]
    fn extrapolation_never_produces_non_positive_values() {
        let m = ScalingModel::from_table1();
        for d in [1usize, 32, 64, 256, 1024, 4096, 1 << 20] {
            let p = m.params(d);
            for (name, v) in [
                ("leakage", p.leakage_power.value()),
                ("write energy", p.write_energy.value()),
                ("read energy", p.read_energy.value()),
                ("shift energy", p.shift_energy.value()),
                ("read latency", p.read_latency.value()),
                ("write latency", p.write_latency.value()),
                ("shift latency", p.shift_latency.value()),
                ("area", p.area.value()),
            ] {
                assert!(v > 0.0, "{name} non-positive ({v}) at {d} DBCs");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dbcs_panics() {
        ScalingModel::from_table1().params(0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn from_anchors_needs_two() {
        ScalingModel::from_anchors(vec![table1::preset(2).unwrap()], 4096 * 8, 32);
    }
}
