use crate::error::ConfigError;
use crate::geometry::RtmGeometry;
use std::fmt;

/// Geometry of a full RTM array: `subarrays` identical subarrays, each a
/// paper-faithful [`RtmGeometry`] (the Table I constants describe *one*
/// subarray — DESTINY models the 4 KiB unit, and RTSim composes banks from
/// such subarrays).
///
/// The shift-cost model is separable per DBC — a DBC's port moves only on
/// accesses to its own variables — and all subarrays share one track
/// geometry, so an array behaves exactly like `subarrays × dbcs` uniform
/// DBCs. The workspace therefore addresses DBCs *globally*: global DBC `d`
/// lives in subarray `d / dbcs_per_subarray` at local index
/// `d % dbcs_per_subarray`. A single-subarray array is bit-for-bit the flat
/// geometry it wraps.
///
/// # Example
///
/// ```
/// use rtm_arch::ArrayGeometry;
///
/// let array = ArrayGeometry::paper_array(2, 16, 1)?;
/// assert_eq!(array.total_dbcs(), 32);
/// assert_eq!(array.capacity_bytes(), 8192);
/// assert_eq!(array.subarray_of_dbc(17), 1);
/// assert_eq!(array.local_dbc(17), 1);
/// # Ok::<(), rtm_arch::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    subarrays: usize,
    subarray: RtmGeometry,
}

impl ArrayGeometry {
    /// Creates an array of `subarrays` identical subarrays.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroSubarrays`] if `subarrays == 0`.
    pub fn new(subarrays: usize, subarray: RtmGeometry) -> Result<Self, ConfigError> {
        if subarrays == 0 {
            return Err(ConfigError::ZeroSubarrays);
        }
        Ok(Self {
            subarrays,
            subarray,
        })
    }

    /// The degenerate single-subarray array (today's flat geometry).
    pub fn single(subarray: RtmGeometry) -> Self {
        Self {
            subarrays: 1,
            subarray,
        }
    }

    /// An array of paper-faithful 4 KiB subarrays
    /// ([`RtmGeometry::paper_4kib_with_ports`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the subarray configuration is invalid or
    /// `subarrays == 0`.
    pub fn paper_array(
        subarrays: usize,
        dbcs_per_subarray: usize,
        ports: usize,
    ) -> Result<Self, ConfigError> {
        Self::new(
            subarrays,
            RtmGeometry::paper_4kib_with_ports(dbcs_per_subarray, ports)?,
        )
    }

    /// The smallest array of copies of `subarray` that offers at least
    /// `vars` variable slots (at least one subarray).
    ///
    /// This is the capacity-aware replacement for growing tracks beyond the
    /// paper's geometry: instead of stretching a subarray, add subarrays.
    pub fn sized_for(subarray: RtmGeometry, vars: usize) -> Self {
        let per = subarray.total_locations();
        Self {
            subarrays: vars.div_ceil(per).max(1),
            subarray,
        }
    }

    /// Number of subarrays.
    pub fn subarrays(&self) -> usize {
        self.subarrays
    }

    /// The per-subarray geometry.
    pub fn subarray(&self) -> RtmGeometry {
        self.subarray
    }

    /// DBCs per subarray.
    pub fn dbcs_per_subarray(&self) -> usize {
        self.subarray.dbcs()
    }

    /// Total number of DBCs across the array.
    pub fn total_dbcs(&self) -> usize {
        self.subarrays * self.subarray.dbcs()
    }

    /// Variable slots per DBC (`N`, uniform across the array).
    pub fn locations_per_dbc(&self) -> usize {
        self.subarray.locations_per_dbc()
    }

    /// Total variable slots across the array.
    pub fn total_locations(&self) -> usize {
        self.subarrays * self.subarray.total_locations()
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.subarrays * self.subarray.capacity_bits()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }

    /// Access ports per track (uniform across the array).
    pub fn ports_per_track(&self) -> usize {
        self.subarray.ports_per_track()
    }

    /// Whether `vars` variables fit the array.
    pub fn fits(&self, vars: usize) -> bool {
        vars <= self.total_locations()
    }

    /// The subarray containing global DBC `dbc`.
    ///
    /// # Panics
    ///
    /// Panics if `dbc >= total_dbcs()`.
    pub fn subarray_of_dbc(&self, dbc: usize) -> usize {
        assert!(dbc < self.total_dbcs(), "global DBC index out of range");
        dbc / self.subarray.dbcs()
    }

    /// The index of global DBC `dbc` within its subarray.
    ///
    /// # Panics
    ///
    /// Panics if `dbc >= total_dbcs()`.
    pub fn local_dbc(&self, dbc: usize) -> usize {
        assert!(dbc < self.total_dbcs(), "global DBC index out of range");
        dbc % self.subarray.dbcs()
    }

    /// The global index of local DBC `local` in subarray `subarray`.
    ///
    /// # Panics
    ///
    /// Panics if `subarray >= subarrays()` or
    /// `local >= dbcs_per_subarray()`.
    pub fn global_dbc(&self, subarray: usize, local: usize) -> usize {
        assert!(subarray < self.subarrays, "subarray index out of range");
        assert!(local < self.subarray.dbcs(), "local DBC index out of range");
        subarray * self.subarray.dbcs() + local
    }
}

impl fmt::Display for ArrayGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} subarray(s) of {} ({} B total)",
            self.subarrays,
            self.subarray,
            self.capacity_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_composes_table1_subarrays() {
        for (dbcs, domains) in [(2, 512), (4, 256), (8, 128), (16, 64)] {
            let a = ArrayGeometry::paper_array(3, dbcs, 1).unwrap();
            assert_eq!(a.subarrays(), 3);
            assert_eq!(a.dbcs_per_subarray(), dbcs);
            assert_eq!(a.locations_per_dbc(), domains);
            assert_eq!(a.total_dbcs(), 3 * dbcs);
            assert_eq!(a.total_locations(), 3 * dbcs * domains);
            assert_eq!(a.capacity_bytes(), 3 * 4096);
        }
    }

    #[test]
    fn single_degenerates_to_the_flat_geometry() {
        let g = RtmGeometry::paper_4kib(8).unwrap();
        let a = ArrayGeometry::single(g);
        assert_eq!(a.subarrays(), 1);
        assert_eq!(a.total_dbcs(), g.dbcs());
        assert_eq!(a.total_locations(), g.total_locations());
        assert_eq!(a.capacity_bytes(), g.capacity_bytes());
        assert_eq!(a, ArrayGeometry::new(1, g).unwrap());
    }

    #[test]
    fn zero_subarrays_rejected() {
        let g = RtmGeometry::paper_4kib(4).unwrap();
        assert_eq!(ArrayGeometry::new(0, g), Err(ConfigError::ZeroSubarrays));
    }

    #[test]
    fn sized_for_adds_whole_subarrays() {
        let g = RtmGeometry::paper_4kib(16).unwrap(); // 1024 slots
        assert_eq!(ArrayGeometry::sized_for(g, 0).subarrays(), 1);
        assert_eq!(ArrayGeometry::sized_for(g, 1024).subarrays(), 1);
        assert_eq!(ArrayGeometry::sized_for(g, 1025).subarrays(), 2);
        // mpeg2's 1336 variables at 16 DBCs: two 4 KiB subarrays.
        let a = ArrayGeometry::sized_for(g, 1336);
        assert_eq!(a.subarrays(), 2);
        assert!(a.fits(1336));
        assert_eq!(a.locations_per_dbc(), 64); // paper-faithful, not grown
    }

    #[test]
    fn global_local_dbc_roundtrip() {
        let a = ArrayGeometry::paper_array(3, 4, 2).unwrap();
        assert_eq!(a.ports_per_track(), 2);
        for d in 0..a.total_dbcs() {
            let (s, l) = (a.subarray_of_dbc(d), a.local_dbc(d));
            assert_eq!(a.global_dbc(s, l), d);
        }
    }

    #[test]
    #[should_panic(expected = "global DBC index out of range")]
    fn out_of_range_dbc_panics() {
        ArrayGeometry::paper_array(2, 4, 1)
            .unwrap()
            .subarray_of_dbc(8);
    }

    #[test]
    fn display_mentions_subarrays() {
        let a = ArrayGeometry::paper_array(2, 4, 1).unwrap();
        assert!(a.to_string().starts_with("2 subarray(s)"));
        assert!(a.to_string().contains("8192 B total"));
    }
}
