use crate::error::ConfigError;
use std::fmt;

/// Geometry of an RTM subarray: the structural parameters of §II-A of the
/// paper (Fig. 2).
///
/// A subarray contains `dbcs` Domain Block Clusters; each DBC groups
/// `tracks_per_dbc` nanotracks (`T` in the paper) that shift in lock-step;
/// each track stores `domains_per_track` domains (`K`), so a DBC offers `K`
/// locations of `T`-bit memory objects; each track carries
/// `ports_per_track` access ports.
///
/// # Example
///
/// ```
/// use rtm_arch::RtmGeometry;
///
/// let geom = RtmGeometry::new(4, 32, 256, 1)?;
/// assert_eq!(geom.capacity_bytes(), 4096);
/// assert_eq!(geom.locations_per_dbc(), 256);
/// # Ok::<(), rtm_arch::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtmGeometry {
    dbcs: usize,
    tracks_per_dbc: usize,
    domains_per_track: usize,
    ports_per_track: usize,
}

impl RtmGeometry {
    /// Creates a geometry, validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any count is zero or there are more ports
    /// than domains on a track.
    pub fn new(
        dbcs: usize,
        tracks_per_dbc: usize,
        domains_per_track: usize,
        ports_per_track: usize,
    ) -> Result<Self, ConfigError> {
        if dbcs == 0 {
            return Err(ConfigError::ZeroDbcs);
        }
        if tracks_per_dbc == 0 {
            return Err(ConfigError::ZeroTracks);
        }
        if domains_per_track == 0 {
            return Err(ConfigError::ZeroDomains);
        }
        if ports_per_track == 0 {
            return Err(ConfigError::ZeroPorts);
        }
        if ports_per_track > domains_per_track {
            return Err(ConfigError::TooManyPorts {
                ports: ports_per_track,
                domains: domains_per_track,
            });
        }
        Ok(Self {
            dbcs,
            tracks_per_dbc,
            domains_per_track,
            ports_per_track,
        })
    }

    /// The paper's iso-capacity 4 KiB configuration with 32 tracks per DBC
    /// and a single port per track: `dbcs ∈ {2, 4, 8, 16}` gives
    /// 512/256/128/64 domains per DBC respectively.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CapacityMismatch`] if 4 KiB does not divide
    /// evenly into `dbcs` DBCs of 32 tracks.
    pub fn paper_4kib(dbcs: usize) -> Result<Self, ConfigError> {
        Self::iso_capacity(4096, dbcs, 32, 1)
    }

    /// The paper's 4 KiB configuration with a multi-port track variant —
    /// the §V generalization axis (Chen's heuristic assumes ≥ 2 ports per
    /// track; DMA is port-independent).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CapacityMismatch`] if 4 KiB does not divide
    /// into `dbcs` DBCs of 32 tracks, or [`ConfigError::TooManyPorts`] if
    /// `ports` exceeds the resulting track length.
    pub fn paper_4kib_with_ports(dbcs: usize, ports: usize) -> Result<Self, ConfigError> {
        Self::iso_capacity(4096, dbcs, 32, ports)
    }

    /// Returns the same geometry with a different port count per track.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroPorts`] / [`ConfigError::TooManyPorts`]
    /// if the new count is invalid for this track length.
    pub fn with_ports(self, ports_per_track: usize) -> Result<Self, ConfigError> {
        Self::new(
            self.dbcs,
            self.tracks_per_dbc,
            self.domains_per_track,
            ports_per_track,
        )
    }

    /// Builds a geometry holding exactly `capacity_bytes` with the given DBC
    /// and track counts, deriving the domains per track.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CapacityMismatch`] if the capacity is not
    /// divisible, or any other [`ConfigError`] for zero/overflowing fields.
    pub fn iso_capacity(
        capacity_bytes: usize,
        dbcs: usize,
        tracks_per_dbc: usize,
        ports_per_track: usize,
    ) -> Result<Self, ConfigError> {
        if dbcs == 0 {
            return Err(ConfigError::ZeroDbcs);
        }
        if tracks_per_dbc == 0 {
            return Err(ConfigError::ZeroTracks);
        }
        let bits = capacity_bytes * 8;
        let per_dbc_bits = tracks_per_dbc; // bits stored per location
        if !bits.is_multiple_of(dbcs * per_dbc_bits) {
            return Err(ConfigError::CapacityMismatch {
                capacity_bytes,
                dbcs,
                tracks_per_dbc,
            });
        }
        let domains = bits / (dbcs * per_dbc_bits);
        Self::new(dbcs, tracks_per_dbc, domains, ports_per_track)
    }

    /// Number of DBCs (`q` in the paper's Algorithm 1).
    pub fn dbcs(&self) -> usize {
        self.dbcs
    }

    /// Tracks per DBC (`T`).
    pub fn tracks_per_dbc(&self) -> usize {
        self.tracks_per_dbc
    }

    /// Domains per track (`K`), i.e. addressable locations per DBC.
    pub fn domains_per_track(&self) -> usize {
        self.domains_per_track
    }

    /// Synonym for [`domains_per_track`](Self::domains_per_track): the number
    /// of memory objects a DBC can hold (`N` in Algorithm 1).
    pub fn locations_per_dbc(&self) -> usize {
        self.domains_per_track
    }

    /// Access ports per track.
    pub fn ports_per_track(&self) -> usize {
        self.ports_per_track
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.dbcs * self.tracks_per_dbc * self.domains_per_track
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bits() / 8
    }

    /// Total number of variable slots across all DBCs.
    pub fn total_locations(&self) -> usize {
        self.dbcs * self.domains_per_track
    }

    /// The `i`-th port's home position on a track, with ports spread evenly.
    ///
    /// With a single port the home position is 0 (the track head). With `p`
    /// ports on `K` domains, port `i` sits at `i * K / p` — the layout used
    /// by multi-port proposals the paper cites (e.g. Chen's fixed multi-port
    /// architecture).
    ///
    /// # Panics
    ///
    /// Panics if `port >= ports_per_track`.
    pub fn port_home(&self, port: usize) -> usize {
        assert!(port < self.ports_per_track, "port index out of range");
        port * self.domains_per_track / self.ports_per_track
    }

    /// Worst-case single-access shift distance: the longest stretch of
    /// domains served by one port.
    pub fn max_shift_distance(&self) -> usize {
        self.domains_per_track.div_ceil(self.ports_per_track)
    }
}

impl fmt::Display for RtmGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} DBCs x {} tracks x {} domains, {} port(s)/track ({} B)",
            self.dbcs,
            self.tracks_per_dbc,
            self.domains_per_track,
            self.ports_per_track,
            self.capacity_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table1_domains() {
        for (dbcs, domains) in [(2, 512), (4, 256), (8, 128), (16, 64)] {
            let g = RtmGeometry::paper_4kib(dbcs).unwrap();
            assert_eq!(g.domains_per_track(), domains);
            assert_eq!(g.capacity_bytes(), 4096);
            assert_eq!(g.tracks_per_dbc(), 32);
            assert_eq!(g.locations_per_dbc(), domains);
            assert_eq!(g.total_locations(), dbcs * domains);
        }
    }

    #[test]
    fn new_validates() {
        assert_eq!(RtmGeometry::new(0, 1, 1, 1), Err(ConfigError::ZeroDbcs));
        assert_eq!(RtmGeometry::new(1, 0, 1, 1), Err(ConfigError::ZeroTracks));
        assert_eq!(RtmGeometry::new(1, 1, 0, 1), Err(ConfigError::ZeroDomains));
        assert_eq!(RtmGeometry::new(1, 1, 1, 0), Err(ConfigError::ZeroPorts));
        assert!(matches!(
            RtmGeometry::new(1, 1, 4, 5),
            Err(ConfigError::TooManyPorts { .. })
        ));
    }

    #[test]
    fn paper_config_port_variants() {
        for ports in [1, 2, 4] {
            let g = RtmGeometry::paper_4kib_with_ports(4, ports).unwrap();
            assert_eq!(g.ports_per_track(), ports);
            assert_eq!(g.domains_per_track(), 256);
        }
        assert_eq!(
            RtmGeometry::paper_4kib(8).unwrap().with_ports(2).unwrap(),
            RtmGeometry::paper_4kib_with_ports(8, 2).unwrap()
        );
        assert!(matches!(
            RtmGeometry::paper_4kib(16).unwrap().with_ports(0),
            Err(ConfigError::ZeroPorts)
        ));
        assert!(matches!(
            RtmGeometry::paper_4kib(16).unwrap().with_ports(65),
            Err(ConfigError::TooManyPorts { .. })
        ));
    }

    #[test]
    fn iso_capacity_rejects_indivisible() {
        assert!(matches!(
            RtmGeometry::iso_capacity(4096, 3, 32, 1),
            Err(ConfigError::CapacityMismatch { .. })
        ));
    }

    #[test]
    fn port_homes_are_evenly_spread() {
        let g = RtmGeometry::new(1, 32, 64, 4).unwrap();
        assert_eq!(g.port_home(0), 0);
        assert_eq!(g.port_home(1), 16);
        assert_eq!(g.port_home(2), 32);
        assert_eq!(g.port_home(3), 48);
        assert_eq!(g.max_shift_distance(), 16);
    }

    #[test]
    #[should_panic(expected = "port index out of range")]
    fn port_home_panics_out_of_range() {
        let g = RtmGeometry::new(1, 32, 64, 2).unwrap();
        g.port_home(2);
    }

    #[test]
    fn display_mentions_capacity() {
        let g = RtmGeometry::paper_4kib(4).unwrap();
        assert!(g.to_string().contains("4096 B"));
    }
}
