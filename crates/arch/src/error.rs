use std::error::Error;
use std::fmt;

/// Error returned when an RTM configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The number of subarrays in an array must be at least 1.
    ZeroSubarrays,
    /// The number of DBCs must be at least 1.
    ZeroDbcs,
    /// Each DBC needs at least one track.
    ZeroTracks,
    /// Each nanotrack needs at least one domain.
    ZeroDomains,
    /// Each nanotrack needs at least one access port.
    ZeroPorts,
    /// More ports than domains on a track.
    TooManyPorts {
        /// Requested ports per track.
        ports: usize,
        /// Domains per track.
        domains: usize,
    },
    /// The requested capacity is not divisible into the requested geometry.
    CapacityMismatch {
        /// Requested total capacity in bytes.
        capacity_bytes: usize,
        /// Number of DBCs requested.
        dbcs: usize,
        /// Tracks per DBC requested.
        tracks_per_dbc: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroSubarrays => write!(f, "number of subarrays must be at least 1"),
            ConfigError::ZeroDbcs => write!(f, "number of DBCs must be at least 1"),
            ConfigError::ZeroTracks => write!(f, "tracks per DBC must be at least 1"),
            ConfigError::ZeroDomains => write!(f, "domains per track must be at least 1"),
            ConfigError::ZeroPorts => write!(f, "ports per track must be at least 1"),
            ConfigError::TooManyPorts { ports, domains } => write!(
                f,
                "requested {ports} ports per track but tracks only have {domains} domains"
            ),
            ConfigError::CapacityMismatch {
                capacity_bytes,
                dbcs,
                tracks_per_dbc,
            } => write!(
                f,
                "capacity of {capacity_bytes} bytes is not divisible into {dbcs} DBCs x {tracks_per_dbc} tracks"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_period() {
        let msgs = [
            ConfigError::ZeroDbcs.to_string(),
            ConfigError::ZeroTracks.to_string(),
            ConfigError::TooManyPorts {
                ports: 9,
                domains: 4,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
