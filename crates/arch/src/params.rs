use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

macro_rules! unit_newtype {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, PartialOrd,
        )]
        pub struct $name(pub f64);

        impl $name {
            /// The raw numeric value.
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit_newtype!(
    /// Nanoseconds — the latency unit of Table I.
    Ns,
    "ns"
);
unit_newtype!(
    /// Picojoules — the per-operation energy unit of Table I.
    Pj,
    "pJ"
);
unit_newtype!(
    /// Milliwatts — the leakage-power unit of Table I.
    Mw,
    "mW"
);
unit_newtype!(
    /// Square millimeters — the area unit of Table I.
    Mm2,
    "mm^2"
);

impl Ns {
    /// Converts a latency to seconds.
    pub fn to_seconds(self) -> f64 {
        self.0 * 1e-9
    }
}

impl Mw {
    /// Energy in picojoules leaked over `duration`:
    /// `mW × ns = 1e-3 J/s × 1e-9 s = 1e-12 J = pJ`.
    pub fn leak_over(self, duration: Ns) -> Pj {
        Pj(self.0 * duration.0)
    }
}

/// Per-configuration memory-system parameters — one column of the paper's
/// Table I (4 KiB RTM, 32 nm technology, 32 tracks per DBC).
///
/// These numbers were produced by the DESTINY circuit simulator in the paper
/// and "include the latency incurred and the energy consumed by the
/// DBC/domain decoders, access ports, multiplexers, write and shift drivers".
/// We treat them as ground truth; see [`crate::ScalingModel`] for
/// configurations outside the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryParams {
    /// Number of DBCs in the subarray.
    pub dbcs: usize,
    /// Number of domains (bits) per nanotrack, i.e. locations per DBC.
    pub domains_per_dbc: usize,
    /// Static leakage power of the whole memory.
    pub leakage_power: Mw,
    /// Energy per write access.
    pub write_energy: Pj,
    /// Energy per read access.
    pub read_energy: Pj,
    /// Energy per single-position shift.
    pub shift_energy: Pj,
    /// Latency per read access.
    pub read_latency: Ns,
    /// Latency per write access.
    pub write_latency: Ns,
    /// Latency per single-position shift.
    pub shift_latency: Ns,
    /// Die area of the memory.
    pub area: Mm2,
}

impl MemoryParams {
    /// Validates internal consistency (all values strictly positive).
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, f64); 8] = [
            ("leakage_power", self.leakage_power.0),
            ("write_energy", self.write_energy.0),
            ("read_energy", self.read_energy.0),
            ("shift_energy", self.shift_energy.0),
            ("read_latency", self.read_latency.0),
            ("write_latency", self.write_latency.0),
            ("shift_latency", self.shift_latency.0),
            ("area", self.area.0),
        ];
        for (name, v) in checks {
            // `!(v > 0.0)` deliberately also catches NaN.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.dbcs == 0 || self.domains_per_dbc == 0 {
            return Err("geometry fields must be nonzero".to_owned());
        }
        Ok(())
    }
}

impl fmt::Display for MemoryParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} DBCs x {} domains: R {:.2}/{:.2}, W {:.2}/{:.2}, S {:.2}/{:.2} (ns/pJ), leak {:.2}, area {:.4}",
            self.dbcs,
            self.domains_per_dbc,
            self.read_latency.0,
            self.read_energy.0,
            self.write_latency.0,
            self.write_energy.0,
            self.shift_latency.0,
            self.shift_energy.0,
            self.leakage_power.0,
            self.area.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_arithmetic() {
        assert_eq!((Ns(1.0) + Ns(2.0)).value(), 3.0);
        assert_eq!((Pj(2.0) * 3.0).value(), 6.0);
        let total: Ns = [Ns(1.0), Ns(2.5)].into_iter().sum();
        assert_eq!(total.value(), 3.5);
        let mut x = Mw(1.0);
        x += Mw(0.5);
        assert_eq!(x.value(), 1.5);
    }

    #[test]
    fn leakage_unit_conversion() {
        // 2 mW over 100 ns = 2e-3 * 100e-9 J = 2e-10 J = 200 pJ.
        assert!((Mw(2.0).leak_over(Ns(100.0)).value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ns_to_seconds() {
        assert!((Ns(10.0).to_seconds() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(Ns(0.99).to_string(), "0.99 ns");
        assert_eq!(format!("{:.1}", Pj(2.18)), "2.2 pJ");
        assert_eq!(Mm2(0.0159).to_string(), "0.0159 mm^2");
        assert_eq!(Mw(3.39).to_string(), "3.39 mW");
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut p = crate::table1::preset(2).unwrap();
        assert!(p.validate().is_ok());
        p.shift_energy = Pj(0.0);
        assert!(p.validate().is_err());
        p.shift_energy = Pj(f64::NAN);
        assert!(p.validate().is_err());
    }
}
