//! The paper's Table I: memory-system parameters of a 4 KiB RTM at 32 nm
//! with 32 tracks per DBC, for 2/4/8/16 DBCs, as produced by the DESTINY
//! circuit simulator.
//!
//! These four columns are copied verbatim from the paper and are the ground
//! truth for all energy/latency/area results. Use [`preset`] for a tabulated
//! configuration and [`crate::ScalingModel`] for anything else.

use crate::params::{MemoryParams, Mm2, Mw, Ns, Pj};

/// DBC counts tabulated by the paper.
pub const TABULATED_DBCS: [usize; 4] = [2, 4, 8, 16];

/// All four Table I columns in DBC order (2, 4, 8, 16).
pub fn all() -> [MemoryParams; 4] {
    [
        MemoryParams {
            dbcs: 2,
            domains_per_dbc: 512,
            leakage_power: Mw(3.39),
            write_energy: Pj(3.42),
            read_energy: Pj(2.26),
            shift_energy: Pj(2.18),
            read_latency: Ns(0.81),
            write_latency: Ns(1.08),
            shift_latency: Ns(0.99),
            area: Mm2(0.0159),
        },
        MemoryParams {
            dbcs: 4,
            domains_per_dbc: 256,
            leakage_power: Mw(4.33),
            write_energy: Pj(3.65),
            read_energy: Pj(2.39),
            shift_energy: Pj(2.03),
            read_latency: Ns(0.84),
            write_latency: Ns(1.14),
            shift_latency: Ns(0.92),
            area: Mm2(0.0186),
        },
        MemoryParams {
            dbcs: 8,
            domains_per_dbc: 128,
            leakage_power: Mw(6.56),
            write_energy: Pj(3.79),
            read_energy: Pj(2.47),
            shift_energy: Pj(1.97),
            read_latency: Ns(0.86),
            write_latency: Ns(1.17),
            shift_latency: Ns(0.86),
            area: Mm2(0.0226),
        },
        MemoryParams {
            dbcs: 16,
            domains_per_dbc: 64,
            leakage_power: Mw(8.94),
            write_energy: Pj(3.94),
            read_energy: Pj(2.54),
            shift_energy: Pj(1.86),
            read_latency: Ns(0.89),
            write_latency: Ns(1.20),
            shift_latency: Ns(0.78),
            area: Mm2(0.0279),
        },
    ]
}

/// Returns the Table I column for `dbcs`, or `None` if the paper does not
/// tabulate that configuration.
///
/// # Example
///
/// ```
/// let p = rtm_arch::table1::preset(8).expect("8 DBCs is tabulated");
/// assert_eq!(p.domains_per_dbc, 128);
/// assert!(rtm_arch::table1::preset(6).is_none());
/// ```
pub fn preset(dbcs: usize) -> Option<MemoryParams> {
    all().into_iter().find(|p| p.dbcs == dbcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_presets_are_tabulated() {
        for d in TABULATED_DBCS {
            let p = preset(d).unwrap();
            assert_eq!(p.dbcs, d);
            p.validate().unwrap();
        }
        assert!(preset(3).is_none());
        assert!(preset(0).is_none());
    }

    #[test]
    fn iso_capacity_invariant() {
        // All configurations store 4 KiB: dbcs * domains * 32 tracks = 32768 bits.
        for p in all() {
            assert_eq!(p.dbcs * p.domains_per_dbc * 32, 4096 * 8, "{}", p.dbcs);
        }
    }

    #[test]
    fn monotone_trends_match_the_paper() {
        let t = all();
        for w in t.windows(2) {
            let (lo, hi) = (&w[0], &w[1]);
            // More DBCs => more ports => more leakage, more area, slower
            // reads/writes, but faster & cheaper shifts (shorter tracks).
            assert!(hi.leakage_power.value() > lo.leakage_power.value());
            assert!(hi.area.value() > lo.area.value());
            assert!(hi.read_latency.value() > lo.read_latency.value());
            assert!(hi.write_latency.value() > lo.write_latency.value());
            assert!(hi.shift_latency.value() < lo.shift_latency.value());
            assert!(hi.shift_energy.value() < lo.shift_energy.value());
            assert!(hi.read_energy.value() > lo.read_energy.value());
            assert!(hi.write_energy.value() > lo.write_energy.value());
        }
    }

    #[test]
    fn spot_check_table_values() {
        let p2 = preset(2).unwrap();
        assert_eq!(p2.shift_latency.value(), 0.99);
        assert_eq!(p2.area.value(), 0.0159);
        let p16 = preset(16).unwrap();
        assert_eq!(p16.leakage_power.value(), 8.94);
        assert_eq!(p16.shift_energy.value(), 1.86);
    }
}
