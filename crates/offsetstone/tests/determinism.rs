//! Suite-level determinism and fidelity checks for the OffsetStone
//! substitute: same seed ⇒ identical trace, the suite carries every named
//! benchmark of the paper's Fig. 4 (≥ 30), and per-benchmark variable
//! counts and sequence lengths stay within the ranges the paper reports
//! for the real OffsetStone traces (1–1336 variables, 1–3640 accesses).

use rtm_offsetstone::{suite, Benchmark, GeneratorConfig};

/// Paper §IV-A: OffsetStone access sequences span 1–1336 variables.
const PAPER_MAX_VARS: usize = 1336;
/// Paper §IV-A: OffsetStone sequence lengths span 1–3640 accesses.
const PAPER_MAX_LEN: usize = 3640;

#[test]
fn suite_has_at_least_30_named_benchmarks() {
    let s = suite();
    assert!(s.len() >= 30, "suite has only {} benchmarks", s.len());
    let mut names: Vec<&str> = s.iter().map(|b| b.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), s.len(), "duplicate benchmark names");
    assert!(names.iter().all(|n| !n.is_empty()));
}

#[test]
fn every_benchmark_regenerates_identically() {
    for b in suite() {
        let first = b.trace();
        let second = Benchmark::by_name(b.name()).unwrap().trace();
        assert_eq!(first, second, "{} is not deterministic", b.name());
    }
}

#[test]
fn same_seed_same_trace_different_seed_different_trace() {
    for b in suite() {
        let seed = b.seed();
        assert_eq!(
            b.trace_with_seed(seed),
            b.trace_with_seed(seed),
            "{} diverges under its own seed",
            b.name()
        );
        // A different seed must change the trace (the profiles are all far
        // from degenerate single-variable workloads).
        assert_ne!(
            b.trace_with_seed(seed),
            b.trace_with_seed(seed ^ 0xDEAD_BEEF),
            "{} ignores its seed",
            b.name()
        );
    }
}

#[test]
fn per_benchmark_sizes_stay_within_paper_ranges() {
    for b in suite() {
        let p = b.profile();
        assert!(
            (1..=PAPER_MAX_VARS).contains(&p.variables),
            "{}: {} variables outside the paper's 1..={PAPER_MAX_VARS}",
            b.name(),
            p.variables
        );
        assert!(
            (1..=PAPER_MAX_LEN).contains(&p.length),
            "{}: length {} outside the paper's 1..={PAPER_MAX_LEN}",
            b.name(),
            p.length
        );
        let trace = b.trace();
        assert_eq!(trace.len(), p.length, "{}: generated length", b.name());
        assert!(
            trace.vars().len() <= p.variables,
            "{}: trace uses more variables than its profile",
            b.name()
        );
    }
}

#[test]
fn secondary_sequences_are_deterministic_and_bounded() {
    for name in ["adpcm", "gzip", "mpeg2"] {
        let b = Benchmark::by_name(name).unwrap();
        let a = b.sequences();
        let c = b.sequences();
        assert_eq!(a, c, "{name}: sequences() not deterministic");
        assert_eq!(a.len(), b.sequence_count());
        assert_eq!(a[0], b.trace(), "{name}: canonical trace must come first");
        for (i, s) in a.iter().enumerate() {
            assert!(
                s.len() <= PAPER_MAX_LEN && s.vars().len() <= PAPER_MAX_VARS,
                "{name}: sequence {i} outside paper ranges"
            );
        }
    }
}

#[test]
fn custom_generator_configs_are_deterministic_too() {
    let cfg = GeneratorConfig::new(150, 700).with_phases(5).with_zipf(1.2);
    assert_eq!(cfg.generate(77), cfg.generate(77));
    assert_ne!(cfg.generate(77), cfg.generate(78));
}
