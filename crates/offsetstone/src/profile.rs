use std::fmt;

/// Coarse workload class of an OffsetStone program, steering the trace
/// generator's structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Control-dominated programs (parsers, compilers, archivers): irregular
    /// access patterns, many short-lived temporaries, moderate phases.
    Control,
    /// Media / DSP kernels (codecs, transforms, filters): tight loop nests
    /// over small working sets, strong phase structure.
    MediaDsp,
    /// Scientific / numeric kernels (solvers, sparse algebra): mid-sized
    /// working sets, skewed access frequencies.
    Scientific,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::Control => write!(f, "control"),
            WorkloadClass::MediaDsp => write!(f, "media/dsp"),
            WorkloadClass::Scientific => write!(f, "scientific"),
        }
    }
}

/// Statistical profile of one synthetic benchmark.
///
/// The paper reports (§IV-A) that OffsetStone sequences span 1–1336
/// variables and lengths 1–3640; the suite's profiles cover those ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Program name as it appears on the paper's Fig. 4 x-axis.
    pub name: &'static str,
    /// Workload class.
    pub class: WorkloadClass,
    /// Number of distinct program variables.
    pub variables: usize,
    /// Trace length (number of accesses).
    pub length: usize,
    /// Number of program phases; variables local to different phases have
    /// disjoint lifespans.
    pub phases: usize,
    /// Zipf exponent of the access-frequency distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of variables shared across phases ("globals"), in `[0, 1]`.
    pub shared_fraction: f64,
    /// Mean number of iterations of an inner loop burst.
    pub loop_iterations: usize,
    /// Working-set size of an inner loop (distinct temporaries per burst).
    pub working_set: usize,
    /// Fraction of write accesses, in `[0, 1]`.
    pub write_fraction: f64,
    /// Fraction of bursts emitted as serialized temporary runs, in `[0, 1]`.
    pub serial_fraction: f64,
    /// Probability a burst iteration also touches a global, in `[0, 1]`.
    pub global_touch: f64,
    /// Fraction of bursts emitted as irregular Zipf regions, in `[0, 1]`.
    pub irregular_fraction: f64,
}

impl BenchmarkProfile {
    /// Validates the profile's internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.variables == 0 {
            return Err(format!("{}: variables must be positive", self.name));
        }
        if self.length == 0 {
            return Err(format!("{}: length must be positive", self.name));
        }
        if self.phases == 0 {
            return Err(format!("{}: phases must be positive", self.name));
        }
        if !(0.0..=1.0).contains(&self.shared_fraction) {
            return Err(format!("{}: shared_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(format!("{}: write_fraction out of range", self.name));
        }
        if self.working_set == 0 {
            return Err(format!("{}: working_set must be positive", self.name));
        }
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return Err(format!("{}: serial_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.global_touch) {
            return Err(format!("{}: global_touch out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.irregular_fraction) {
            return Err(format!("{}: irregular_fraction out of range", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            class: WorkloadClass::Control,
            variables: 10,
            length: 100,
            phases: 2,
            zipf_exponent: 1.0,
            shared_fraction: 0.2,
            loop_iterations: 4,
            working_set: 3,
            write_fraction: 0.3,
            serial_fraction: 0.4,
            global_touch: 0.5,
            irregular_fraction: 0.2,
        }
    }

    #[test]
    fn valid_profile_passes() {
        profile().validate().unwrap();
    }

    #[test]
    fn invalid_profiles_fail() {
        let mut p = profile();
        p.variables = 0;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.shared_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = profile();
        p.working_set = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::MediaDsp.to_string(), "media/dsp");
    }
}
