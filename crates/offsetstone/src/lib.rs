//! Synthetic OffsetStone-style benchmark suite.
//!
//! The DATE 2020 paper evaluates on the **OffsetStone** suite (Leupers,
//! CC'03): memory-access traces distilled from 30 real C programs, with 1 to
//! 1336 program variables per access sequence and sequence lengths of 1 to
//! 3640. The original traces are not redistributable, so this crate is a
//! *substitute* (documented in `DESIGN.md` §3): every benchmark of the
//! paper's Fig. 4 x-axis is reproduced by name with a deterministic,
//! seeded generator whose statistical profile (variable count, trace
//! length, phase structure, frequency skew, loop locality) matches the
//! paper's reported ranges and the workload class of the real program.
//!
//! The three structural knobs are exactly the trace properties that drive
//! the paper's results:
//!
//! * **loop locality** — repeated short access patterns reward intra-DBC
//!   heuristics (Chen, ShiftsReduce);
//! * **phase structure** — program phases with disjoint variable lifespans
//!   reward the DMA heuristic;
//! * **frequency skew** (Zipf) — hot variables reward AFD.
//!
//! # Example
//!
//! ```
//! use rtm_offsetstone::{suite, Benchmark};
//!
//! let benchmarks = suite();
//! assert!(benchmarks.len() >= 30);
//! let gzip = Benchmark::by_name("gzip").expect("in suite");
//! let trace = gzip.trace();
//! assert!(trace.len() > 100);
//! // Deterministic: same benchmark, same trace.
//! assert_eq!(trace, gzip.trace());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
mod profile;
mod suite;
pub mod tiers;

pub use generator::{GeneratorConfig, TraceGenerator};
pub use profile::{BenchmarkProfile, WorkloadClass};
pub use suite::{generate_traces, largest, stress_suite, suite, Benchmark};
pub use tiers::{AdversarialConfig, Tier, TierMetrics, TierWorkload};
