//! Workload tiers: the `expected` / `stress` / `adversarial` generator
//! families behind the scale experiments.
//!
//! Each tier is a small family of named workloads with a deterministic
//! per-workload seed (FNV-1a of the name, XOR a per-tier salt) and a
//! `scale` factor that grows the trace: length scales linearly, the
//! variable count with √scale (so access density per variable rises with
//! scale, like longer runs of the same program).
//!
//! * **expected** — paper-shaped workloads (phases, loop bursts, mild
//!   Zipf skew over globals): the regime the composite heuristics were
//!   designed for.
//! * **stress** — the legacy `stress_suite` profiles, folded in here so
//!   there is exactly one generator path; same names, same seeds, same
//!   traces as before.
//! * **adversarial** — anti-locality sweeps built to maximize heuristic
//!   regret: per-phase variable permutations (phase changes), a Zipf
//!   hot set interleaved everywhere (frequency skew that ping-pongs the
//!   port), and lane-strided emission so consecutive accesses are always
//!   far apart in first-occurrence order (defeats chain harvesting).
//!
//! Every workload can be materialized ([`TierWorkload::generate`]) or
//! streamed chunk by chunk ([`AccessStream`]) without materializing
//! anything — the 10M-access rows of `BENCH_scale.json` run entirely
//! through the streaming form.

use crate::generator::{GeneratorConfig, TraceGenerator};
use crate::profile::{BenchmarkProfile, WorkloadClass};
use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtm_trace::{AccessKind, AccessSequence, AccessStream, SequenceBuilder, VarId};

/// Accesses per chunk delivered by a [`TierWorkload`] stream.
const STREAM_CHUNK: usize = 64 * 1024;

/// FNV-1a hash of `bytes` — the suite-wide seed derivation.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The three workload tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Paper-shaped workloads the heuristics were designed for.
    Expected,
    /// Beyond-paper-scale workloads (the legacy stress suite).
    Stress,
    /// Anti-locality workloads built to maximize heuristic regret.
    Adversarial,
}

impl Tier {
    /// All tiers, in canonical order.
    pub const ALL: [Tier; 3] = [Tier::Expected, Tier::Stress, Tier::Adversarial];

    /// The tier's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Expected => "expected",
            Tier::Stress => "stress",
            Tier::Adversarial => "adversarial",
        }
    }

    /// Parses a tier name (the `--profile` CLI value).
    pub fn parse(s: &str) -> Option<Tier> {
        Tier::ALL.into_iter().find(|t| t.name() == s)
    }

    /// Per-tier seed salt. The stress tier's salt is zero so its folded-in
    /// legacy benchmarks keep the exact seeds (and traces) they have
    /// always had.
    pub fn salt(self) -> u64 {
        match self {
            Tier::Expected => 0xE19E_C7ED_5EED_0001,
            Tier::Stress => 0,
            Tier::Adversarial => 0xAD5E_ED00_0BAD_CA5E,
        }
    }

    /// The tier's workload family at scale 1.
    pub fn workloads(self) -> Vec<TierWorkload> {
        self.workloads_scaled(1.0)
    }

    /// The tier's workload family, grown by `scale` (length ×scale,
    /// variables ×√scale; `scale == 1.0` reproduces the base workloads
    /// exactly).
    pub fn workloads_scaled(self, scale: f64) -> Vec<TierWorkload> {
        match self {
            Tier::Expected => expected_profiles()
                .into_iter()
                .map(|p| TierWorkload::profiled(self, p, scale))
                .collect(),
            Tier::Stress => stress_profiles()
                .into_iter()
                .map(|p| TierWorkload::profiled(self, p, scale))
                .collect(),
            Tier::Adversarial => adversarial_presets()
                .into_iter()
                .map(|(name, cfg)| TierWorkload::adversarial(name, cfg, scale))
                .collect(),
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Derives the deterministic seed of workload `name` in `tier`.
pub fn derive_seed(tier: Tier, name: &str) -> u64 {
    fnv1a(name.as_bytes()) ^ tier.salt()
}

/// The legacy stress profile family — the single source of truth for
/// `stress_suite()` (which wraps these into [`Benchmark`](crate::Benchmark)
/// values) and for [`Tier::Stress`]. Same names, same profiles, same
/// FNV-1a-of-name seeds as the original `stress_suite()` table.
pub fn stress_profiles() -> Vec<BenchmarkProfile> {
    use WorkloadClass::{Control, MediaDsp, Scientific};
    vec![
        BenchmarkProfile {
            name: "stress-ctl",
            class: Control,
            variables: 2600,
            length: 11200,
            phases: 10,
            zipf_exponent: 1.0,
            shared_fraction: 0.06,
            loop_iterations: 2,
            working_set: 6,
            write_fraction: 0.30,
            serial_fraction: 0.35,
            global_touch: 0.60,
            irregular_fraction: 0.45,
        },
        BenchmarkProfile {
            name: "stress-dsp",
            class: MediaDsp,
            variables: 2100,
            length: 12400,
            phases: 9,
            zipf_exponent: 0.8,
            shared_fraction: 0.06,
            loop_iterations: 4,
            working_set: 5,
            write_fraction: 0.34,
            serial_fraction: 0.50,
            global_touch: 0.45,
            irregular_fraction: 0.15,
        },
        BenchmarkProfile {
            name: "stress-sci",
            class: Scientific,
            variables: 3200,
            length: 14800,
            phases: 11,
            zipf_exponent: 1.1,
            shared_fraction: 0.05,
            loop_iterations: 3,
            working_set: 6,
            write_fraction: 0.27,
            serial_fraction: 0.40,
            global_touch: 0.50,
            irregular_fraction: 0.30,
        },
    ]
}

/// The expected-tier profiles: one per workload class, inside the paper's
/// reported OffsetStone ranges, with the structure (disjoint temporaries,
/// loop locality, global skew) the composite heuristics exploit.
pub fn expected_profiles() -> Vec<BenchmarkProfile> {
    use WorkloadClass::{Control, MediaDsp, Scientific};
    vec![
        BenchmarkProfile {
            name: "expected-ctl",
            class: Control,
            variables: 420,
            length: 2200,
            phases: 5,
            zipf_exponent: 1.0,
            shared_fraction: 0.09,
            loop_iterations: 3,
            working_set: 5,
            write_fraction: 0.30,
            serial_fraction: 0.35,
            global_touch: 0.60,
            irregular_fraction: 0.45,
        },
        BenchmarkProfile {
            name: "expected-dsp",
            class: MediaDsp,
            variables: 300,
            length: 2600,
            phases: 4,
            zipf_exponent: 0.8,
            shared_fraction: 0.08,
            loop_iterations: 4,
            working_set: 4,
            write_fraction: 0.33,
            serial_fraction: 0.50,
            global_touch: 0.45,
            irregular_fraction: 0.15,
        },
        BenchmarkProfile {
            name: "expected-sci",
            class: Scientific,
            variables: 500,
            length: 3000,
            phases: 5,
            zipf_exponent: 1.1,
            shared_fraction: 0.08,
            loop_iterations: 3,
            working_set: 6,
            write_fraction: 0.27,
            serial_fraction: 0.40,
            global_touch: 0.50,
            irregular_fraction: 0.30,
        },
    ]
}

/// The adversarial presets: `(name, config)` pairs.
pub fn adversarial_presets() -> Vec<(&'static str, AdversarialConfig)> {
    vec![
        (
            "adv-sweep",
            AdversarialConfig {
                variables: 2000,
                length: 12000,
                phases: 6,
                lanes: 8,
                hot_fraction: 0.08,
                hot_touch: 0.25,
                zipf_exponent: 1.1,
                write_fraction: 0.30,
            },
        ),
        (
            "adv-ping",
            AdversarialConfig {
                variables: 1200,
                length: 10000,
                phases: 4,
                lanes: 12,
                hot_fraction: 0.15,
                hot_touch: 0.40,
                zipf_exponent: 1.3,
                write_fraction: 0.30,
            },
        ),
        (
            "adv-chase",
            AdversarialConfig {
                variables: 3000,
                length: 14000,
                phases: 8,
                lanes: 6,
                hot_fraction: 0.05,
                hot_touch: 0.15,
                zipf_exponent: 0.9,
                write_fraction: 0.30,
            },
        ),
    ]
}

/// Scales base `(variables, length)` by `scale`: length linearly, the
/// variable count by √scale (both deterministic IEEE arithmetic; the
/// identity at `scale == 1.0`).
pub fn scaled_dims(variables: usize, length: usize, scale: f64) -> (usize, usize) {
    let s = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0
    };
    let length = ((length as f64 * s).round() as usize).max(1);
    let variables = ((variables as f64 * s.sqrt()).round() as usize).max(8);
    (variables, length)
}

/// The anti-locality generator of the adversarial tier.
///
/// Per phase it owns a disjoint slice of "cold" variables, shuffles them
/// into a fresh permutation (the phase change), and then sweeps that
/// permutation in `lanes` interleaved strides: consecutive emissions come
/// from positions `~m/lanes` apart, so no placement that follows
/// first-occurrence or chain order keeps consecutive accesses close.
/// Between cold steps a Zipf-distributed **hot** variable is interspersed
/// with probability `hot_touch` — globally recurring skew that tempts
/// frequency-greedy placement into port ping-pong. Sweep direction
/// alternates to break residual ordering.
///
/// Emission is O(1) per access after an O(variables) per-phase setup, so
/// 10M+-access traces stream in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialConfig {
    /// Distinct variables.
    pub variables: usize,
    /// Accesses to emit.
    pub length: usize,
    /// Phases (each with a fresh cold-set permutation).
    pub phases: usize,
    /// Interleaved anti-locality lanes per sweep.
    pub lanes: usize,
    /// Fraction of variables in the global Zipf hot set.
    pub hot_fraction: f64,
    /// Probability a cold step is followed by a hot access.
    pub hot_touch: f64,
    /// Zipf exponent over the hot set.
    pub zipf_exponent: f64,
    /// Fraction of write accesses.
    pub write_fraction: f64,
}

impl AdversarialConfig {
    /// Number of variable slots the emitter draws from (every emitted
    /// [`VarId`] has a smaller index).
    pub fn var_slots(&self) -> usize {
        self.variables.max(2)
    }

    /// Emits exactly `length` accesses for `seed` into `sink` — the
    /// streaming form; [`generate`](Self::generate) materializes the same
    /// stream.
    pub fn emit(&self, seed: u64, sink: &mut dyn FnMut(VarId, AccessKind)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.var_slots();
        let hot_count = ((n as f64 * self.hot_fraction.clamp(0.0, 1.0)).round() as usize)
            .min(n.saturating_sub(1));
        let hot: Vec<VarId> = (0..hot_count).map(VarId::from_index).collect();
        let hot_dist = (!hot.is_empty()).then(|| {
            let w: Vec<f64> = (0..hot.len())
                .map(|r| 1.0 / ((r + 1) as f64).powf(self.zipf_exponent.max(0.1)))
                .collect();
            WeightedIndex::new(&w).expect("positive weights")
        });
        let cold_n = n - hot_count;
        let phases = self.phases.max(1);
        let per_phase_cold = cold_n / phases;
        let per_phase_len = self.length.div_ceil(phases);
        let write_p = self.write_fraction.clamp(0.0, 1.0);
        let hot_p = self.hot_touch.clamp(0.0, 1.0);
        let mut emitted = 0usize;

        for phase in 0..phases {
            if emitted >= self.length {
                break;
            }
            let budget = per_phase_len.min(self.length - emitted);
            let lo = hot_count + phase * per_phase_cold;
            let hi = if phase == phases - 1 {
                n
            } else {
                lo + per_phase_cold
            };
            // Fresh permutation of this phase's cold slice: the phase
            // change adversarial placements must survive.
            let mut perm: Vec<VarId> = (lo..hi).map(VarId::from_index).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            let m = perm.len();
            let mut count = 0usize;
            if m == 0 {
                // Hot-only degenerate phase.
                while count < budget {
                    let v = match &hot_dist {
                        Some(d) => hot[d.sample(&mut rng)],
                        None => VarId::from_index(0),
                    };
                    sink(v, kind_of(&mut rng, write_p));
                    count += 1;
                }
                emitted += count;
                continue;
            }
            let k = self.lanes.clamp(1, m);
            let mut forward = true;
            'phase: loop {
                for i in 0..m {
                    if count >= budget {
                        break 'phase;
                    }
                    let pos = if forward { i } else { m - 1 - i };
                    // Lane-strided visit: neighbors in time are ~m/k
                    // apart in permutation order.
                    let idx = (pos % k * m / k + pos / k) % m;
                    sink(perm[idx], kind_of(&mut rng, write_p));
                    count += 1;
                    if let Some(d) = &hot_dist {
                        if count < budget && rng.gen_bool(hot_p) {
                            sink(hot[d.sample(&mut rng)], kind_of(&mut rng, write_p));
                            count += 1;
                        }
                    }
                }
                forward = !forward;
            }
            emitted += count;
        }
    }

    /// Materializes the trace of [`emit`](Self::emit) for `seed`.
    pub fn generate(&self, seed: u64) -> AccessSequence {
        let mut b = SequenceBuilder::new();
        for i in 0..self.var_slots() {
            b.var(&format!("v{i}"));
        }
        self.emit(seed, &mut |v, k| {
            b.access(v, k);
        });
        b.finish()
    }
}

fn kind_of(rng: &mut ChaCha8Rng, write_p: f64) -> AccessKind {
    if rng.gen_bool(write_p) {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// The generator behind one tier workload.
#[derive(Debug, Clone, PartialEq)]
enum WorkloadKind {
    /// Phase/burst generator driven by a [`BenchmarkProfile`].
    Profiled(BenchmarkProfile),
    /// The adversarial anti-locality generator.
    Adversarial(&'static str, AdversarialConfig),
}

/// One named, seeded, scaled workload of a [`Tier`].
///
/// Implements [`AccessStream`], so it can be indexed, solved and simulated
/// without ever materializing its trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TierWorkload {
    tier: Tier,
    kind: WorkloadKind,
    scale: f64,
}

impl TierWorkload {
    fn profiled(tier: Tier, profile: BenchmarkProfile, scale: f64) -> Self {
        Self {
            tier,
            kind: WorkloadKind::Profiled(profile),
            scale,
        }
    }

    fn adversarial(name: &'static str, cfg: AdversarialConfig, scale: f64) -> Self {
        Self {
            tier: Tier::Adversarial,
            kind: WorkloadKind::Adversarial(name, cfg),
            scale,
        }
    }

    /// Looks a workload up by name across all tiers (e.g. `"stress-ctl"`,
    /// `"adv-sweep"`), at the given scale.
    pub fn by_name(name: &str, scale: f64) -> Option<TierWorkload> {
        Tier::ALL
            .into_iter()
            .flat_map(|t| t.workloads_scaled(scale))
            .find(|w| w.name() == name)
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            WorkloadKind::Profiled(p) => p.name,
            WorkloadKind::Adversarial(name, _) => name,
        }
    }

    /// The owning tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The scale factor this workload was built with.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The workload's deterministic seed ([`derive_seed`] of its name).
    pub fn seed(&self) -> u64 {
        derive_seed(self.tier, self.name())
    }

    /// Scaled `(variables, length)` of the generated trace.
    pub fn dims(&self) -> (usize, usize) {
        match &self.kind {
            WorkloadKind::Profiled(p) => scaled_dims(p.variables, p.length, self.scale),
            WorkloadKind::Adversarial(_, c) => scaled_dims(c.variables, c.length, self.scale),
        }
    }

    /// Emits the workload's trace into `sink` without materializing it.
    pub fn emit(&self, sink: &mut dyn FnMut(VarId, AccessKind)) {
        let seed = self.seed();
        match &self.kind {
            WorkloadKind::Profiled(p) => {
                let mut cfg = GeneratorConfig::from(p);
                (cfg.variables, cfg.length) = self.dims();
                TraceGenerator::new(cfg).emit(seed, sink);
            }
            WorkloadKind::Adversarial(_, c) => {
                let mut cfg = c.clone();
                (cfg.variables, cfg.length) = self.dims();
                cfg.emit(seed, sink);
            }
        }
    }

    /// Materializes the workload's trace (identical to the streamed form;
    /// variable `i` is named `v{i}`).
    pub fn generate(&self) -> AccessSequence {
        let mut b = SequenceBuilder::new();
        for i in 0..self.var_slots() {
            b.var(&format!("v{i}"));
        }
        self.emit(&mut |v, k| {
            b.access(v, k);
        });
        b.finish()
    }

    /// Number of variable slots the emitter draws from.
    fn var_slots(&self) -> usize {
        let (vars, _) = self.dims();
        match &self.kind {
            WorkloadKind::Profiled(_) => vars.max(1),
            WorkloadKind::Adversarial(..) => vars.max(2),
        }
    }
}

impl AccessStream for TierWorkload {
    fn access_count(&self) -> usize {
        self.dims().1
    }

    fn var_count(&self) -> usize {
        self.var_slots()
    }

    fn for_each_chunk(&self, f: &mut dyn FnMut(&[VarId], &[AccessKind])) {
        let mut vbuf: Vec<VarId> = Vec::with_capacity(STREAM_CHUNK);
        let mut kbuf: Vec<AccessKind> = Vec::with_capacity(STREAM_CHUNK);
        self.emit(&mut |v, k| {
            vbuf.push(v);
            kbuf.push(k);
            if vbuf.len() == STREAM_CHUNK {
                f(&vbuf, &kbuf);
                vbuf.clear();
                kbuf.clear();
            }
        });
        if !vbuf.is_empty() {
            f(&vbuf, &kbuf);
        }
    }
}

/// Structural trace metrics used to tell the tiers apart in tests: the
/// adversarial tier must *measurably* differ from the expected tier, not
/// just by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierMetrics {
    /// Number of sharp working-set changes between consecutive windows
    /// (Jaccard overlap < 0.5 across 32 windows).
    pub phase_changes: usize,
    /// Fraction of accesses going to the top-10%-frequency variables (the
    /// Zipf tail mass).
    pub hot_mass: f64,
    /// Distinct transitions per access pair — high values mean
    /// anti-locality (few repeated neighbor pairs for placement to
    /// exploit).
    pub locality_score: f64,
}

/// Computes [`TierMetrics`] of a trace.
pub fn metrics_of(seq: &AccessSequence) -> TierMetrics {
    let len = seq.len();
    let nvars = seq.vars().len();
    if len < 2 || nvars == 0 {
        return TierMetrics {
            phase_changes: 0,
            hot_mass: 0.0,
            locality_score: 0.0,
        };
    }
    // Windowed working-set overlap.
    const WINDOWS: usize = 32;
    let wlen = len.div_ceil(WINDOWS).max(1);
    let mut phase_changes = 0usize;
    let mut prev: Option<Vec<bool>> = None;
    for w in seq.accesses().chunks(wlen) {
        let mut set = vec![false; nvars];
        for &v in w {
            set[v.index()] = true;
        }
        if let Some(p) = &prev {
            let mut inter = 0usize;
            let mut union = 0usize;
            for i in 0..nvars {
                inter += usize::from(set[i] && p[i]);
                union += usize::from(set[i] || p[i]);
            }
            if union > 0 && (inter as f64) < 0.5 * union as f64 {
                phase_changes += 1;
            }
        }
        prev = Some(set);
    }
    // Top-10%-frequency access share.
    let mut freq = vec![0u64; nvars];
    for &v in seq.accesses() {
        freq[v.index()] += 1;
    }
    let mut sorted = freq.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top = nvars.div_ceil(10);
    let hot: u64 = sorted.iter().take(top).sum();
    let hot_mass = hot as f64 / len as f64;
    let st = seq.stats();
    TierMetrics {
        phase_changes,
        hot_mass,
        locality_score: st.distinct_transitions as f64 / (len - 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fnv_trace(seq: &AccessSequence) -> u64 {
        fnv1a(
            &seq.accesses()
                .iter()
                .flat_map(|v| (v.index() as u32).to_le_bytes())
                .chain(seq.kinds().iter().map(|&k| k as u8))
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn legacy_stress_traces_are_reproduced_exactly() {
        // Golden fingerprints captured from the pre-tier `stress_suite()`
        // generator path: folding the stress family into the tier must
        // not change a single byte of any trace.
        let golden = [
            ("stress-ctl", 0x861e04c365add20bu64, 11200, 2600),
            ("stress-dsp", 0x52334478505e2930, 12400, 2100),
            ("stress-sci", 0x0c8802d796b8c98e, 14800, 3200),
        ];
        let tier = Tier::Stress.workloads();
        for (name, hash, len, vars) in golden {
            let w = tier.iter().find(|w| w.name() == name).unwrap();
            let t = w.generate();
            assert_eq!(t.len(), len, "{name} length");
            assert_eq!(t.vars().len(), vars, "{name} vars");
            assert_eq!(fnv_trace(&t), hash, "{name} trace fingerprint");
            // And the suite wrapper produces the same trace object.
            let b = crate::Benchmark::by_name(name).unwrap();
            assert_eq!(b.trace(), t, "{name}: suite and tier paths diverge");
            assert_eq!(b.seed(), w.seed(), "{name}: seed derivation diverges");
        }
    }

    #[test]
    fn every_tier_has_three_named_seeded_workloads() {
        let mut seeds = Vec::new();
        for tier in Tier::ALL {
            let ws = tier.workloads();
            assert_eq!(ws.len(), 3, "{tier}");
            for w in &ws {
                assert_eq!(w.tier(), tier);
                assert_eq!(w.seed(), derive_seed(tier, w.name()));
                seeds.push(w.seed());
                assert_eq!(
                    TierWorkload::by_name(w.name(), 1.0).as_ref(),
                    Some(w),
                    "{} not found by name",
                    w.name()
                );
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9, "tier seeds must be pairwise distinct");
        assert!(Tier::parse("expected") == Some(Tier::Expected));
        assert!(Tier::parse("bogus").is_none());
    }

    #[test]
    fn scale_one_is_the_identity_and_scale_grows() {
        for tier in Tier::ALL {
            for (base, scaled) in tier.workloads().iter().zip(tier.workloads_scaled(4.0)) {
                assert_eq!(base.dims(), scaled_dims_of_base(&scaled, 0.25));
                let (v1, l1) = base.dims();
                let (v4, l4) = scaled.dims();
                assert_eq!(l4, l1 * 4, "{}", base.name());
                assert_eq!(v4, (v1 as f64 * 2.0).round() as usize, "{}", base.name());
                assert_eq!(scaled.access_count(), l4);
            }
        }
        // Degenerate scales fall back to 1.0 / floors.
        assert_eq!(scaled_dims(100, 1000, 1.0), (100, 1000));
        assert_eq!(scaled_dims(100, 1000, f64::NAN), (100, 1000));
        assert_eq!(scaled_dims(4, 10, 0.001), (8, 1));
    }

    /// Recovers the base dims of `w` given the inverse scale factor.
    fn scaled_dims_of_base(w: &TierWorkload, _inv: f64) -> (usize, usize) {
        let (v, l) = w.dims();
        ((v as f64 / 2.0).round() as usize, l / 4)
    }

    #[test]
    fn streamed_and_materialized_workloads_are_identical() {
        for tier in Tier::ALL {
            for w in tier.workloads() {
                let seq = w.generate();
                assert_eq!(seq.len(), w.access_count(), "{}", w.name());
                assert!(seq.vars().len() <= w.var_count(), "{}", w.name());
                let mut vars = Vec::new();
                let mut kinds = Vec::new();
                w.for_each_chunk(&mut |vs, ks| {
                    vars.extend_from_slice(vs);
                    kinds.extend_from_slice(ks);
                });
                assert_eq!(vars.as_slice(), seq.accesses(), "{}", w.name());
                assert_eq!(kinds.as_slice(), seq.kinds(), "{}", w.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_scale() {
        for tier in Tier::ALL {
            for w in tier.workloads_scaled(1.5) {
                let again = TierWorkload::by_name(w.name(), 1.5).unwrap();
                assert_eq!(w.generate(), again.generate(), "{}", w.name());
            }
        }
    }

    #[test]
    fn adversarial_emits_exact_length_at_any_shape() {
        for (vars, len, phases, lanes) in [
            (2usize, 7usize, 1usize, 1usize),
            (50, 1000, 3, 8),
            (8, 64, 16, 64),
        ] {
            let cfg = AdversarialConfig {
                variables: vars,
                length: len,
                phases,
                lanes,
                hot_fraction: 0.2,
                hot_touch: 0.3,
                zipf_exponent: 1.0,
                write_fraction: 0.3,
            };
            let t = cfg.generate(9);
            assert_eq!(t.len(), len);
            assert!(t.vars().len() <= cfg.var_slots());
            assert_eq!(t, cfg.generate(9));
            assert_ne!(t, cfg.generate(10));
        }
        // All-hot config (cold set empty).
        let cfg = AdversarialConfig {
            variables: 10,
            length: 100,
            phases: 2,
            lanes: 4,
            hot_fraction: 1.0,
            hot_touch: 0.5,
            zipf_exponent: 1.2,
            write_fraction: 0.0,
        };
        assert_eq!(cfg.generate(3).len(), 100);
    }

    #[test]
    fn tiers_are_structurally_distinct() {
        let metrics = |tier: Tier| -> Vec<TierMetrics> {
            tier.workloads()
                .iter()
                .map(|w| metrics_of(&w.generate()))
                .collect()
        };
        let adv = metrics(Tier::Adversarial);
        let exp = metrics(Tier::Expected);
        let stress = metrics(Tier::Stress);
        for (i, a) in adv.iter().enumerate() {
            for (j, e) in exp.iter().enumerate() {
                // Anti-locality: every adversarial workload spreads its
                // transition pairs over more distinct neighbor pairs than
                // every expected workload.
                assert!(
                    a.locality_score > 1.1 * e.locality_score,
                    "adversarial[{i}] locality {:.3} !>> expected[{j}] {:.3}",
                    a.locality_score,
                    e.locality_score
                );
                // Phase structure: expected workloads churn fresh
                // temporaries in every window (sharp set changes almost
                // everywhere); adversarial phases hold one permuted cold
                // slice live for many windows, so their working-set
                // changes are few and sharp — phase boundaries, not
                // churn.
                assert!(
                    a.phase_changes < e.phase_changes,
                    "adversarial[{i}] {} !< expected[{j}] {}",
                    a.phase_changes,
                    e.phase_changes
                );
                // Zipf tail mass: the expected tier concentrates far more
                // mass on its hot globals than the deliberately thin
                // adversarial hot set.
                assert!(
                    e.hot_mass > a.hot_mass,
                    "expected[{j}] hot mass {:.3} !> adversarial[{i}] {:.3}",
                    e.hot_mass,
                    a.hot_mass
                );
            }
        }
        // Every tier still carries *some* skew.
        for m in adv.iter().chain(&exp).chain(&stress) {
            assert!(m.hot_mass > 0.1, "degenerate hot mass {:.3}", m.hot_mass);
        }
    }

    #[test]
    fn metrics_handle_degenerate_traces() {
        let tiny = AccessSequence::parse("a").unwrap();
        let m = metrics_of(&tiny);
        assert_eq!(m.phase_changes, 0);
        assert_eq!(m.hot_mass, 0.0);
    }
}
