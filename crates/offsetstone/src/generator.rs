//! The seeded trace generator behind the synthetic suite.
//!
//! A trace is produced phase by phase. Each phase owns a slice of
//! *phase-local* variables plus access to a pool of *shared* variables
//! ("globals") that live for the whole program. Within a phase, accesses
//! are emitted as loop bursts over a small working set of **fresh
//! temporaries** — locals are consumed sequentially and (mostly) never
//! revisited, exactly like the per-function temporaries of the compiled C
//! programs behind OffsetStone. Globals are interspersed between and inside
//! bursts.
//!
//! This yields the three properties the paper's results hinge on:
//!
//! * long chains of variables with **disjoint lifespans** (the fresh
//!   temporaries) — what the DMA heuristic harvests;
//! * **loop locality** inside bursts — what intra-DBC heuristics (Chen,
//!   ShiftsReduce) exploit;
//! * a **frequency skew** between hot globals and cold temporaries — what
//!   AFD keys on (and what makes AFD ping-pong the port between globals and
//!   drifting temporaries when they share a DBC).

use crate::profile::BenchmarkProfile;
use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtm_trace::{AccessKind, AccessSequence, SequenceBuilder, VarId};

/// Tunable generator configuration, decoupled from the named suite so users
/// can synthesize custom workloads.
///
/// # Example
///
/// ```
/// use rtm_offsetstone::GeneratorConfig;
///
/// let seq = GeneratorConfig::new(120, 400)
///     .with_phases(4)
///     .with_zipf(1.1)
///     .generate(42);
/// assert_eq!(seq.len(), 400);
/// assert!(seq.vars().len() <= 120);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Distinct variables to draw from.
    pub variables: usize,
    /// Accesses to emit.
    pub length: usize,
    /// Program phases.
    pub phases: usize,
    /// Zipf exponent for access-frequency skew among globals.
    pub zipf_exponent: f64,
    /// Fraction of variables shared across phases (globals).
    pub shared_fraction: f64,
    /// Mean loop-burst iteration count.
    pub loop_iterations: usize,
    /// Distinct temporaries per loop burst.
    pub working_set: usize,
    /// Fraction of write accesses.
    pub write_fraction: f64,
    /// Fraction of bursts emitted as serialized runs (each temporary's
    /// accesses contiguous) instead of interleaved loop bodies.
    pub serial_fraction: f64,
    /// Probability that a burst iteration also touches a global.
    pub global_touch: f64,
    /// Fraction of bursts emitted as *irregular* regions: Zipf-skewed
    /// independent draws over already-live variables and globals (the
    /// pointer-chasing / control-flow style of parsers and compilers, where
    /// frequency-aware intra-DBC placement shines).
    pub irregular_fraction: f64,
}

impl GeneratorConfig {
    /// A reasonable default configuration over `variables` variables and
    /// `length` accesses: 3 phases, mild skew, small loops.
    pub fn new(variables: usize, length: usize) -> Self {
        Self {
            variables,
            length,
            phases: 3,
            zipf_exponent: 0.9,
            shared_fraction: 0.12,
            loop_iterations: 3,
            working_set: 4,
            write_fraction: 0.3,
            serial_fraction: 0.45,
            global_touch: 0.5,
            irregular_fraction: 0.25,
        }
    }

    /// Sets the phase count.
    pub fn with_phases(mut self, phases: usize) -> Self {
        self.phases = phases.max(1);
        self
    }

    /// Sets the Zipf exponent.
    pub fn with_zipf(mut self, exponent: f64) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Sets the shared-variable fraction.
    pub fn with_shared_fraction(mut self, fraction: f64) -> Self {
        self.shared_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the loop parameters.
    pub fn with_loops(mut self, iterations: usize, working_set: usize) -> Self {
        self.loop_iterations = iterations.max(1);
        self.working_set = working_set.max(1);
        self
    }

    /// Sets the serialized-burst fraction.
    pub fn with_serial_fraction(mut self, fraction: f64) -> Self {
        self.serial_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the irregular-burst fraction.
    pub fn with_irregular_fraction(mut self, fraction: f64) -> Self {
        self.irregular_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Generates a trace with the given seed.
    pub fn generate(&self, seed: u64) -> AccessSequence {
        TraceGenerator::new(self.clone()).generate(seed)
    }
}

impl From<&BenchmarkProfile> for GeneratorConfig {
    fn from(p: &BenchmarkProfile) -> Self {
        Self {
            variables: p.variables,
            length: p.length,
            phases: p.phases,
            zipf_exponent: p.zipf_exponent,
            shared_fraction: p.shared_fraction,
            loop_iterations: p.loop_iterations,
            working_set: p.working_set,
            write_fraction: p.write_fraction,
            serial_fraction: p.serial_fraction,
            global_touch: p.global_touch,
            irregular_fraction: p.irregular_fraction,
        }
    }
}

/// The generator itself. Stateless apart from its configuration; all
/// randomness comes from the seed passed to [`generate`](Self::generate),
/// so traces are reproducible.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: GeneratorConfig,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a deterministic trace for `seed`.
    ///
    /// The trace has exactly `config.length` accesses over at most
    /// `config.variables` distinct variables (small workloads may not touch
    /// every variable; temporaries are consumed on demand).
    pub fn generate(&self, seed: u64) -> AccessSequence {
        let mut b = SequenceBuilder::new();
        for i in 0..self.config.variables.max(1) {
            b.var(&format!("v{i}"));
        }
        self.emit(seed, &mut |v, k| {
            b.access(v, k);
        });
        b.finish()
    }

    /// Emits the trace for `seed` into `sink`, one `(variable, kind)` pair
    /// per access, without materializing anything — the streaming form of
    /// [`generate`](Self::generate). Variable `i` is `VarId::from_index(i)`
    /// (named `v{i}` in the materialized table); the emitted stream is
    /// byte-identical to the accesses of `generate(seed)`.
    pub fn emit(&self, seed: u64, sink: &mut dyn FnMut(VarId, AccessKind)) {
        let c = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let n = c.variables.max(1);
        let vars: Vec<VarId> = (0..n).map(VarId::from_index).collect();

        // Globals first, then the pool of phase-local temporaries.
        let shared_count = ((n as f64 * c.shared_fraction).round() as usize).min(n);
        let (shared, locals) = vars.split_at(shared_count);
        let phases = c.phases.max(1);
        let per_phase = if locals.is_empty() {
            0
        } else {
            (locals.len() / phases).max(1)
        };

        // Zipf weights over the globals: hot globals recur a lot.
        let global_dist = (!shared.is_empty()).then(|| {
            let w: Vec<f64> = (0..shared.len())
                .map(|r| 1.0 / ((r + 1) as f64).powf(c.zipf_exponent))
                .collect();
            WeightedIndex::new(&w).expect("positive weights")
        });

        let per_phase_len = c.length.div_ceil(phases);
        let mut emitted = 0usize;
        let kind = |rng: &mut ChaCha8Rng| {
            if rng.gen_bool(c.write_fraction.clamp(0.0, 1.0)) {
                AccessKind::Write
            } else {
                AccessKind::Read
            }
        };

        for phase in 0..phases {
            if emitted >= c.length {
                break;
            }
            let lo = (phase * per_phase).min(locals.len());
            let hi = if phase == phases - 1 {
                locals.len()
            } else {
                (lo + per_phase).min(locals.len())
            };
            let phase_locals = &locals[lo..hi];
            let mut cursor = 0usize;

            let phase_budget = per_phase_len.min(c.length - emitted);
            let mut phase_emitted = 0usize;

            while phase_emitted < phase_budget {
                let k = c.working_set.max(1);

                let push = |v: VarId,
                            rng: &mut ChaCha8Rng,
                            sink: &mut dyn FnMut(VarId, AccessKind),
                            phase_emitted: &mut usize| {
                    if *phase_emitted < phase_budget {
                        let kk = kind(rng);
                        sink(v, kk);
                        *phase_emitted += 1;
                    }
                };

                let iters = 1 + rng.gen_range(0..c.loop_iterations.max(1) * 2);

                // Irregular region: Zipf-skewed independent draws over the
                // variables already live in this phase plus the globals.
                if rng.gen_bool(c.irregular_fraction.clamp(0.0, 1.0)) {
                    let live_hi = cursor.min(phase_locals.len());
                    let window = 3 * k;
                    let live_lo = live_hi.saturating_sub(window);
                    let pool: Vec<VarId> = shared
                        .iter()
                        .chain(&phase_locals[live_lo..live_hi])
                        .copied()
                        .collect();
                    if !pool.is_empty() {
                        let w: Vec<f64> = (0..pool.len())
                            .map(|r| 1.0 / ((r + 1) as f64).powf(c.zipf_exponent.max(0.3)))
                            .collect();
                        let dist = WeightedIndex::new(&w).expect("positive weights");
                        for _ in 0..(iters * k).max(1) {
                            let v = pool[dist.sample(&mut rng)];
                            push(v, &mut rng, sink, &mut phase_emitted);
                            if phase_emitted >= phase_budget {
                                break;
                            }
                        }
                        continue;
                    }
                }

                // Fresh temporaries for this burst (sequential consumption;
                // once the pool is dry, reuse the final window).
                let ws: Vec<VarId> = if phase_locals.is_empty() {
                    Vec::new()
                } else if cursor + k <= phase_locals.len() {
                    let w = phase_locals[cursor..cursor + k].to_vec();
                    cursor += k;
                    w
                } else {
                    let start = phase_locals.len().saturating_sub(k);
                    phase_locals[start..].to_vec()
                };
                if ws.is_empty() {
                    // Globals-only workload.
                    if let (Some(dist), false) = (&global_dist, shared.is_empty()) {
                        for _ in 0..iters.max(1) {
                            let g = shared[dist.sample(&mut rng)];
                            push(g, &mut rng, sink, &mut phase_emitted);
                            if phase_emitted >= phase_budget {
                                break;
                            }
                        }
                    } else {
                        // Degenerate: a single variable in total.
                        push(vars[0], &mut rng, sink, &mut phase_emitted);
                    }
                    continue;
                }

                if rng.gen_bool(c.serial_fraction.clamp(0.0, 1.0)) {
                    // Serialized runs: t1 t1 … g t2 t2 … — accumulator-style
                    // temporaries with globals in between.
                    for &t in &ws {
                        for _ in 0..iters {
                            push(t, &mut rng, sink, &mut phase_emitted);
                        }
                        if let Some(dist) = &global_dist {
                            if rng.gen_bool(c.global_touch.clamp(0.0, 1.0)) {
                                let g = shared[dist.sample(&mut rng)];
                                push(g, &mut rng, sink, &mut phase_emitted);
                            }
                        }
                        if phase_emitted >= phase_budget {
                            break;
                        }
                    }
                } else {
                    // Interleaved loop body: (t1 t2 … tk [g])^iters.
                    'outer: for _ in 0..iters {
                        for &t in &ws {
                            push(t, &mut rng, sink, &mut phase_emitted);
                            if phase_emitted >= phase_budget {
                                break 'outer;
                            }
                        }
                        if let Some(dist) = &global_dist {
                            if rng.gen_bool(c.global_touch.clamp(0.0, 1.0)) {
                                let g = shared[dist.sample(&mut rng)];
                                push(g, &mut rng, sink, &mut phase_emitted);
                                if phase_emitted >= phase_budget {
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
            emitted += phase_emitted;
        }

        // Rounding slack: top up with globals (or the last variable).
        while emitted < c.length {
            let v = shared.first().copied().unwrap_or(vars[0]);
            let kk = kind(&mut rng);
            sink(v, kk);
            emitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length() {
        for len in [1usize, 7, 100, 1333] {
            let seq = GeneratorConfig::new(60, len).generate(1);
            assert_eq!(seq.len(), len, "length {len}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::new(90, 500);
        assert_eq!(cfg.generate(9), cfg.generate(9));
        assert_ne!(cfg.generate(9), cfg.generate(10));
    }

    #[test]
    fn respects_variable_budget() {
        let seq = GeneratorConfig::new(10, 1000).generate(3);
        assert!(seq.vars().len() <= 10);
    }

    #[test]
    fn temporaries_create_disjoint_lifespans() {
        let seq = GeneratorConfig::new(300, 1200).generate(7);
        let frac = seq.stats().disjoint_pair_fraction;
        assert!(
            frac > 0.4,
            "sequential temporaries should give many disjoint pairs, got {frac:.2}"
        );
    }

    #[test]
    fn phase_structure_adds_disjointness() {
        let phased = GeneratorConfig::new(240, 2000).with_phases(6).generate(7);
        let flat = GeneratorConfig::new(240, 2000).with_phases(1).generate(7);
        let dp = phased.stats().disjoint_pair_fraction;
        let df = flat.stats().disjoint_pair_fraction;
        assert!(dp >= df * 0.9, "phased {dp:.2} vs flat {df:.2}");
    }

    #[test]
    fn zipf_skews_global_frequencies() {
        let skewed = GeneratorConfig::new(100, 4000).with_zipf(1.6).generate(5);
        let uniform = GeneratorConfig::new(100, 4000).with_zipf(0.0).generate(5);
        assert!(skewed.stats().max_frequency >= uniform.stats().max_frequency);
    }

    #[test]
    fn write_fraction_zero_means_all_reads() {
        let mut cfg = GeneratorConfig::new(40, 200);
        cfg.write_fraction = 0.0;
        let seq = cfg.generate(2);
        assert!(seq.kinds().iter().all(|&k| k == AccessKind::Read));
    }

    #[test]
    fn single_variable_workload() {
        let seq = GeneratorConfig::new(1, 50).generate(4);
        assert_eq!(seq.len(), 50);
        assert_eq!(seq.vars().len(), 1);
    }

    #[test]
    fn serialized_bursts_have_more_self_transitions() {
        let serial = GeneratorConfig::new(200, 2000)
            .with_serial_fraction(1.0)
            .generate(6);
        let interleaved = GeneratorConfig::new(200, 2000)
            .with_serial_fraction(0.0)
            .generate(6);
        assert!(
            serial.stats().self_transitions > interleaved.stats().self_transitions,
            "serial {} !> interleaved {}",
            serial.stats().self_transitions,
            interleaved.stats().self_transitions
        );
    }
}
