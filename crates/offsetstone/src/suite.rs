use crate::generator::GeneratorConfig;
use crate::profile::{BenchmarkProfile, WorkloadClass};
use rtm_trace::AccessSequence;

/// One named benchmark of the synthetic suite.
///
/// Obtain instances from [`suite`] or [`Benchmark::by_name`]; the generated
/// trace is deterministic per benchmark (the seed is derived from the name).
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    profile: BenchmarkProfile,
}

impl Benchmark {
    /// Looks up a benchmark by name: the Fig. 4 suite (e.g. `"gzip"`) plus
    /// the [`stress_suite`] family (e.g. `"stress-ctl"`).
    pub fn by_name(name: &str) -> Option<Benchmark> {
        suite()
            .into_iter()
            .chain(stress_suite())
            .find(|b| b.profile.name == name)
    }

    /// The benchmark's name.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// The statistical profile.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// The deterministic seed used by [`trace`](Self::trace): an FNV-1a
    /// hash of the benchmark name.
    pub fn seed(&self) -> u64 {
        fnv1a(self.profile.name.as_bytes())
    }

    /// Generates the benchmark's canonical trace.
    pub fn trace(&self) -> AccessSequence {
        self.trace_with_seed(self.seed())
    }

    /// Generates a trace with a custom seed (for robustness studies over
    /// multiple instances of the same profile).
    pub fn trace_with_seed(&self, seed: u64) -> AccessSequence {
        GeneratorConfig::from(&self.profile).generate(seed)
    }

    /// Number of access sequences this benchmark provides (the real
    /// OffsetStone programs contain many per-function sequences, most of
    /// them small; §IV-A: "Benchmarks vary in terms of number of access
    /// sequences"). One canonical large sequence plus several small ones,
    /// scaled with the program size.
    pub fn sequence_count(&self) -> usize {
        1 + (self.profile.length / 400).clamp(1, 8)
    }

    /// All access sequences of this benchmark: index 0 is the canonical
    /// trace of [`trace`](Self::trace); the rest are smaller per-function
    /// style sequences (2–40 variables, 20–200 accesses) with the same
    /// workload character, deterministically seeded.
    pub fn sequences(&self) -> Vec<AccessSequence> {
        let mut out = vec![self.trace()];
        let base = GeneratorConfig::from(&self.profile);
        for i in 1..self.sequence_count() {
            let seed = self.seed().wrapping_add(i as u64);
            // Derive a small-sequence config: shrink sizes, keep character.
            let vars = 2 + (seed as usize ^ (i * 7)) % 39;
            let length = 20 + (seed as usize >> 8 ^ (i * 13)) % 181;
            let mut cfg = base.clone();
            cfg.variables = vars;
            cfg.length = length;
            cfg.phases = base.phases.min(1 + vars / 8);
            out.push(cfg.generate(seed));
        }
        out
    }
}

/// Generates the canonical traces of `benchmarks` on up to `threads` scoped
/// workers (`0` = auto-detect), returning them in input order.
///
/// Trace generation is pure and deterministically seeded per benchmark, so
/// the result is identical to a sequential `b.trace()` loop for any thread
/// count — this is the fan-out used to load the whole suite concurrently
/// before an experiment sweep.
pub fn generate_traces(benchmarks: &[Benchmark], threads: usize) -> Vec<AccessSequence> {
    if benchmarks.is_empty() {
        return Vec::new();
    }
    let workers = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
    .clamp(1, benchmarks.len());
    if workers == 1 {
        return benchmarks.iter().map(Benchmark::trace).collect();
    }
    let chunk = benchmarks.len().div_ceil(workers);
    let mut out: Vec<Option<AccessSequence>> = vec![None; benchmarks.len()];
    std::thread::scope(|scope| {
        for (out_chunk, in_chunk) in out.chunks_mut(chunk).zip(benchmarks.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, b) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(b.trace());
                }
            });
        }
    });
    out.into_iter()
        .map(|t| t.expect("every slot written by exactly one worker"))
        .collect()
}

use crate::tiers::fnv1a;

/// The full benchmark suite: every program named on the x-axis of the
/// paper's Fig. 4, with workload classes and sizes matching the paper's
/// reported ranges (1–1336 variables, sequence lengths up to 3640).
///
/// Profiles are hand-assigned per program class: control-dominated programs
/// (parsers, archivers) get irregular, weakly-phased traces; media/DSP
/// kernels get tight loops and strong phases; scientific kernels sit in
/// between with skewed frequencies.
pub fn suite() -> Vec<Benchmark> {
    use WorkloadClass::{Control, MediaDsp, Scientific};
    // (name, class, vars, length, phases, zipf, shared, iters, ws, writes,
    //  serial, gtouch, irregular). Variable counts follow the var/length
    // ratios of offset-assignment traces (lots of short-lived temporaries);
    // control-dominated programs get large irregular regions, DSP kernels
    // tight loops.
    #[allow(clippy::type_complexity)]
    let table: &[(
        &'static str,
        WorkloadClass,
        usize,
        usize,
        usize,
        f64,
        f64,
        usize,
        usize,
        f64,
        f64,
        f64,
        f64,
    )] = &[
        (
            "8051", Control, 330, 1180, 4, 0.9, 0.10, 3, 5, 0.32, 0.35, 0.60, 0.45,
        ),
        (
            "adpcm", MediaDsp, 165, 920, 3, 0.8, 0.09, 4, 4, 0.28, 0.50, 0.45, 0.15,
        ),
        (
            "anagram", Control, 180, 640, 3, 1.0, 0.10, 2, 4, 0.30, 0.35, 0.60, 0.45,
        ),
        (
            "anthr", Control, 415, 1480, 5, 0.9, 0.09, 3, 5, 0.31, 0.35, 0.60, 0.45,
        ),
        (
            "bdd", Scientific, 500, 2260, 5, 1.1, 0.08, 3, 6, 0.26, 0.40, 0.50, 0.30,
        ),
        (
            "bison", Control, 770, 2750, 6, 1.0, 0.07, 2, 6, 0.29, 0.35, 0.60, 0.45,
        ),
        (
            "cavity", MediaDsp, 240, 1340, 4, 0.8, 0.08, 4, 4, 0.33, 0.50, 0.45, 0.15,
        ),
        (
            "cc65", Control, 875, 3120, 7, 1.0, 0.06, 2, 6, 0.30, 0.35, 0.60, 0.45,
        ),
        (
            "codecs", MediaDsp, 310, 1710, 5, 0.9, 0.08, 4, 5, 0.34, 0.50, 0.45, 0.15,
        ),
        (
            "cpp", Control, 680, 2430, 6, 1.1, 0.07, 2, 6, 0.28, 0.35, 0.60, 0.45,
        ),
        (
            "dct", MediaDsp, 190, 1060, 3, 0.7, 0.07, 5, 4, 0.36, 0.55, 0.40, 0.15,
        ),
        (
            "dspstone", MediaDsp, 220, 1230, 4, 0.8, 0.08, 4, 4, 0.35, 0.55, 0.40, 0.15,
        ),
        (
            "eqntott", Control, 390, 1390, 4, 1.0, 0.09, 3, 5, 0.27, 0.35, 0.60, 0.45,
        ),
        (
            "f2c", Control, 920, 3280, 7, 1.0, 0.06, 2, 6, 0.29, 0.35, 0.60, 0.45,
        ),
        (
            "fft", MediaDsp, 205, 1130, 4, 0.7, 0.07, 5, 4, 0.34, 0.55, 0.40, 0.15,
        ),
        (
            "flex", Control, 810, 2890, 6, 1.0, 0.06, 2, 6, 0.28, 0.35, 0.60, 0.45,
        ),
        (
            "fuzzy", Scientific, 230, 1030, 4, 0.9, 0.09, 3, 5, 0.30, 0.40, 0.50, 0.30,
        ),
        (
            "gif2asc", MediaDsp, 155, 870, 3, 0.8, 0.08, 4, 4, 0.33, 0.50, 0.45, 0.15,
        ),
        (
            "gsm", MediaDsp, 355, 1960, 5, 0.8, 0.07, 4, 5, 0.34, 0.50, 0.45, 0.15,
        ),
        (
            "gzip", Control, 720, 2580, 6, 1.1, 0.07, 3, 5, 0.30, 0.35, 0.60, 0.45,
        ),
        (
            "h263", MediaDsp, 420, 2340, 6, 0.9, 0.07, 4, 5, 0.35, 0.50, 0.45, 0.15,
        ),
        (
            "hmm", Scientific, 280, 1280, 4, 1.0, 0.08, 3, 5, 0.29, 0.40, 0.50, 0.30,
        ),
        (
            "jpeg", MediaDsp, 490, 2710, 6, 0.9, 0.07, 4, 5, 0.34, 0.50, 0.45, 0.15,
        ),
        (
            "klt", MediaDsp, 210, 1170, 4, 0.8, 0.08, 4, 4, 0.33, 0.50, 0.45, 0.15,
        ),
        (
            "lpsolve", Scientific, 545, 2470, 5, 1.1, 0.07, 3, 6, 0.27, 0.40, 0.50, 0.30,
        ),
        (
            "motion", MediaDsp, 175, 980, 3, 0.8, 0.08, 4, 4, 0.35, 0.50, 0.45, 0.15,
        ),
        (
            "mp3", MediaDsp, 455, 2520, 6, 0.9, 0.07, 4, 5, 0.34, 0.50, 0.45, 0.15,
        ),
        (
            "mpeg2", MediaDsp, 1336, 3640, 8, 0.9, 0.05, 4, 6, 0.34, 0.50, 0.45, 0.15,
        ),
        (
            "sparse", Scientific, 345, 1560, 4, 1.2, 0.08, 3, 6, 0.26, 0.40, 0.50, 0.30,
        ),
        (
            "triangle", Scientific, 180, 820, 3, 0.9, 0.09, 3, 4, 0.30, 0.40, 0.50, 0.30,
        ),
        (
            "viterbi", MediaDsp, 195, 1090, 4, 0.7, 0.07, 5, 4, 0.33, 0.55, 0.40, 0.15,
        ),
    ];
    table
        .iter()
        .map(
            |&(
                name,
                class,
                variables,
                length,
                phases,
                zipf,
                shared,
                iters,
                ws,
                writes,
                serial,
                gtouch,
                irregular,
            )| {
                Benchmark {
                    profile: BenchmarkProfile {
                        name,
                        class,
                        variables,
                        length,
                        phases,
                        zipf_exponent: zipf,
                        shared_fraction: shared,
                        loop_iterations: iters,
                        working_set: ws,
                        write_fraction: writes,
                        serial_fraction: serial,
                        global_touch: gtouch,
                        irregular_fraction: irregular,
                    },
                }
            },
        )
        .collect()
}

/// The deterministic **stress** profile family: workloads well beyond the
/// paper's reported OffsetStone ranges (≥ 10 000 accesses, ≥ 2 000
/// variables each), one per workload class.
///
/// Every stress benchmark overflows a single 4 KiB subarray at *every*
/// Table I DBC count (a subarray offers at most 1 024 variable slots), so
/// suite-level tests over this family always exercise the capacity-aware
/// multi-subarray placement path — not just unit-sized fixtures. Profiles
/// are generated with the same seeded discipline as the Fig. 4 suite
/// (seed = FNV-1a of the name ⇒ same name, same trace, forever).
pub fn stress_suite() -> Vec<Benchmark> {
    // The profiles live in `tiers` (the stress tier and this suite view
    // are the same single generator path); this wrapper only attaches the
    // `Benchmark` name/seed/trace API.
    crate::tiers::stress_profiles()
        .into_iter()
        .map(|profile| Benchmark { profile })
        .collect()
}

/// The benchmark with the longest access sequence (`mpeg2`) — the paper
/// runs its 2000-generation GA study "for the benchmark with the largest
/// access sequence".
pub fn largest() -> Benchmark {
    suite()
        .into_iter()
        .max_by_key(|b| b.profile().length)
        .expect("suite is nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_fig4_names() {
        let s = suite();
        assert_eq!(s.len(), 31); // every label on Fig. 4's x-axis
        for b in &s {
            b.profile().validate().unwrap();
        }
        // No duplicate names.
        let mut names: Vec<&str> = s.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 31);
    }

    #[test]
    fn sizes_cover_paper_ranges() {
        let s = suite();
        let max_vars = s.iter().map(|b| b.profile().variables).max().unwrap();
        let max_len = s.iter().map(|b| b.profile().length).max().unwrap();
        assert_eq!(max_vars, 1336); // paper: up to 1336 variables
        assert_eq!(max_len, 3640); // paper: up to 3640 accesses
        assert!(s.iter().all(|b| b.profile().length <= 3640));
        assert!(s.iter().all(|b| b.profile().variables <= 1336));
    }

    #[test]
    fn by_name_lookup() {
        assert!(Benchmark::by_name("gzip").is_some());
        assert!(Benchmark::by_name("viterbi").is_some());
        assert!(Benchmark::by_name("nonexistent").is_none());
    }

    #[test]
    fn traces_are_deterministic_and_sized() {
        for name in ["adpcm", "gzip", "dct"] {
            let b = Benchmark::by_name(name).unwrap();
            let t1 = b.trace();
            let t2 = b.trace();
            assert_eq!(t1, t2, "{name} not deterministic");
            assert_eq!(t1.len(), b.profile().length);
            assert!(t1.vars().len() <= b.profile().variables);
        }
    }

    #[test]
    fn largest_is_mpeg2() {
        assert_eq!(largest().name(), "mpeg2");
    }

    #[test]
    fn stress_suite_exceeds_every_4kib_subarray() {
        let s = stress_suite();
        assert_eq!(s.len(), 3);
        for b in &s {
            let p = b.profile();
            p.validate().unwrap();
            assert!(p.variables >= 2000, "{}: {} vars", b.name(), p.variables);
            assert!(p.length >= 10_000, "{}: {} accesses", b.name(), p.length);
            // A 4 KiB subarray offers at most 1024 slots at any Table I DBC
            // count, so every stress benchmark forces the multi-subarray
            // path.
            assert!(p.variables > 1024);
            assert!(Benchmark::by_name(b.name()).is_some());
        }
        // Disjoint from the Fig. 4 suite, distinct seeds throughout.
        let mut seeds: Vec<u64> = suite().iter().chain(&s).map(Benchmark::seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 31 + 3);
    }

    #[test]
    fn stress_traces_are_deterministic_and_sized() {
        let b = Benchmark::by_name("stress-dsp").unwrap();
        let t1 = b.trace();
        assert_eq!(t1, b.trace());
        assert_eq!(t1.len(), b.profile().length);
        assert!(t1.vars().len() > 1024, "must overflow one subarray");
    }

    #[test]
    fn different_benchmarks_have_different_seeds() {
        let s = suite();
        let mut seeds: Vec<u64> = s.iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), s.len());
    }

    #[test]
    fn media_benchmarks_have_stronger_locality_than_control() {
        // Compare mean distinct-transition density between classes.
        let density = |b: &Benchmark| {
            let st = b.trace().stats();
            st.distinct_transitions as f64 / st.length as f64
        };
        let dct = density(&Benchmark::by_name("dct").unwrap());
        let cc65 = density(&Benchmark::by_name("cc65").unwrap());
        assert!(
            dct < cc65,
            "dsp kernel should be more loop-local: dct {dct:.3} vs cc65 {cc65:.3}"
        );
    }

    #[test]
    fn custom_seed_changes_trace() {
        let b = Benchmark::by_name("fft").unwrap();
        assert_ne!(b.trace_with_seed(1), b.trace_with_seed(2));
    }

    #[test]
    fn sequences_start_with_the_canonical_trace() {
        let b = Benchmark::by_name("gzip").unwrap();
        let seqs = b.sequences();
        assert_eq!(seqs.len(), b.sequence_count());
        assert!(seqs.len() >= 2);
        assert_eq!(seqs[0], b.trace());
    }

    #[test]
    fn secondary_sequences_are_small_and_in_paper_ranges() {
        for name in ["adpcm", "cc65", "mpeg2"] {
            let b = Benchmark::by_name(name).unwrap();
            for s in &b.sequences()[1..] {
                assert!(s.len() >= 20 && s.len() <= 200, "{name}: |S|={}", s.len());
                assert!(s.vars().len() <= 41, "{name}: vars={}", s.vars().len());
                assert!(!s.is_empty());
            }
        }
    }

    #[test]
    fn sequences_are_deterministic() {
        let b = Benchmark::by_name("dct").unwrap();
        assert_eq!(b.sequences(), b.sequences());
    }

    #[test]
    fn larger_programs_have_more_sequences() {
        let small = Benchmark::by_name("anagram").unwrap().sequence_count();
        let large = Benchmark::by_name("f2c").unwrap().sequence_count();
        assert!(large > small);
    }

    #[test]
    fn parallel_trace_generation_matches_sequential() {
        let benchmarks: Vec<Benchmark> = suite().into_iter().take(6).collect();
        let sequential: Vec<_> = benchmarks.iter().map(Benchmark::trace).collect();
        for threads in [1, 3, 8] {
            assert_eq!(generate_traces(&benchmarks, threads), sequential);
        }
        assert!(generate_traces(&[], 4).is_empty());
    }
}
